// Google-benchmark microbenchmarks for the substrate hot paths: tensor ops,
// autograd round trips, the ELBO step, and the local-reparameterization
// overhead the paper discusses ("they double the computational cost").
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/tyxe.h"
#include "data/datasets.h"
#include "obs/diag.h"
#include "obs/event_sink.h"
#include "obs/flags.h"
#include "obs/prof.h"
#include "par/par.h"
#include "ppl/diag.h"
#include "resil/checkpoint.h"

using tx::Tensor;
namespace nd = tx::dist;

namespace {

void BM_MatMul(benchmark::State& state) {
  const auto n = state.range(0);
  tx::Generator gen(0);
  Tensor a = tx::randn({n, n}, &gen);
  Tensor b = tx::randn({n, n}, &gen);
  tx::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tx::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2d(benchmark::State& state) {
  const auto c = state.range(0);
  tx::Generator gen(0);
  Tensor x = tx::randn({8, c, 16, 16}, &gen);
  Tensor w = tx::randn({c, c, 3, 3}, &gen);
  tx::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tx::conv2d(x, w, Tensor(), 1, 1));
  }
}
BENCHMARK(BM_Conv2d)->Arg(8)->Arg(16);

void BM_MlpForwardBackward(benchmark::State& state) {
  tx::Generator gen(0);
  auto net = tx::nn::make_mlp({64, 128, 128, 10}, "relu", &gen);
  Tensor x = tx::randn({64, 64}, &gen);
  for (auto _ : state) {
    for (auto& s : net->named_parameter_slots()) s.slot->zero_grad();
    tx::sum(tx::square(net->forward(x))).backward();
  }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_SviStepRegressionBnn(benchmark::State& state) {
  tx::manual_seed(0);
  tx::Generator gen(0);
  auto data = tx::data::make_foong_regression(64, gen);
  auto net = tx::nn::make_mlp({1, 50, 1}, "tanh", &gen);
  auto bnn = std::make_shared<tyxe::VariationalBNN>(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::HomoskedasticGaussian>(64, 0.1f),
      tyxe::guides::auto_normal_factory());
  auto optim = std::make_shared<tx::infer::Adam>(1e-3);
  std::vector<tyxe::Batch> batch{{{data.x}, data.y}};
  for (auto _ : state) {
    bnn->fit(batch, optim, 1);
  }
}
BENCHMARK(BM_SviStepRegressionBnn);

void BM_SviStepLocalReparam(benchmark::State& state) {
  tx::manual_seed(0);
  tx::Generator gen(0);
  auto data = tx::data::make_foong_regression(64, gen);
  auto net = tx::nn::make_mlp({1, 50, 1}, "tanh", &gen);
  auto bnn = std::make_shared<tyxe::VariationalBNN>(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::HomoskedasticGaussian>(64, 0.1f),
      tyxe::guides::auto_normal_factory());
  auto optim = std::make_shared<tx::infer::Adam>(1e-3);
  std::vector<tyxe::Batch> batch{{{data.x}, data.y}};
  tyxe::poutine::LocalReparameterization lr;
  for (auto _ : state) {
    bnn->fit(batch, optim, 1);
  }
}
BENCHMARK(BM_SviStepLocalReparam);

// Same step as BM_SviStepRegressionBnn with inference-health diagnostics
// explicitly off (the default): the difference against that baseline is the
// cost of the disabled hooks — one relaxed atomic load per step — and should
// be indistinguishable from noise. The DiagOn variant (attached messenger,
// full per-site stream) bounds the enabled cost.
void BM_SviStepDiagOff(benchmark::State& state) {
  tx::manual_seed(0);
  tx::Generator gen(0);
  auto data = tx::data::make_foong_regression(64, gen);
  auto net = tx::nn::make_mlp({1, 50, 1}, "tanh", &gen);
  auto bnn = std::make_shared<tyxe::VariationalBNN>(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::HomoskedasticGaussian>(64, 0.1f),
      tyxe::guides::auto_normal_factory());
  auto optim = std::make_shared<tx::infer::Adam>(1e-3);
  std::vector<tyxe::Batch> batch{{{data.x}, data.y}};
  tx::obs::diag::set_enabled(false);
  for (auto _ : state) {
    bnn->fit(batch, optim, 1);
  }
}
BENCHMARK(BM_SviStepDiagOff);

void BM_SviStepDiagOn(benchmark::State& state) {
  tx::manual_seed(0);
  tx::Generator gen(0);
  auto data = tx::data::make_foong_regression(64, gen);
  auto net = tx::nn::make_mlp({1, 50, 1}, "tanh", &gen);
  auto bnn = std::make_shared<tyxe::VariationalBNN>(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::HomoskedasticGaussian>(64, 0.1f),
      tyxe::guides::auto_normal_factory());
  auto optim = std::make_shared<tx::infer::Adam>(1e-3);
  std::vector<tyxe::Batch> batch{{{data.x}, data.y}};
  tx::obs::diag::reset();
  tx::obs::diag::set_enabled(true);
  tx::ppl::DiagnosticsMessenger diag_messenger;
  tx::ppl::HandlerScope diag_scope(diag_messenger);
  for (auto _ : state) {
    bnn->fit(batch, optim, 1);
  }
  tx::obs::diag::set_enabled(false);
  tx::obs::diag::reset();
}
BENCHMARK(BM_SviStepDiagOn);

void BM_HmcLeapfrogStep(benchmark::State& state) {
  tx::manual_seed(0);
  tx::Generator gen(0);
  auto data = tx::data::make_foong_regression(32, gen);
  auto net = tx::nn::make_mlp({1, 16, 1}, "tanh", &gen);
  tyxe::BNNBase bnn(net, std::make_shared<tyxe::IIDPrior>(
                             std::make_shared<nd::Normal>(0.0f, 1.0f)));
  auto lik = std::make_shared<tyxe::HomoskedasticGaussian>(32, 0.1f);
  tx::infer::Potential potential([&] {
    Tensor out = bnn.sampled_forward(data.x);
    lik->data_program(out, data.y);
  });
  std::vector<double> q = potential.initial_position(&gen);
  std::vector<double> grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(potential.value_and_grad(q, grad));
  }
}
BENCHMARK(BM_HmcLeapfrogStep);

void BM_PredictPosteriorSample(benchmark::State& state) {
  tx::manual_seed(0);
  tx::Generator gen(0);
  auto net = tx::nn::make_resnet8(10, 8, 3, &gen);
  tyxe::HideExpose hide_bn;
  hide_bn.hide_module_types = {"BatchNorm2d"};
  tyxe::VariationalBNN bnn(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f),
                                       hide_bn),
      std::make_shared<tyxe::Categorical>(100),
      tyxe::guides::auto_normal_factory());
  Tensor x = tx::randn({8, 3, 16, 16}, &gen);
  net->eval();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bnn.predict(x, 1));
  }
}
BENCHMARK(BM_PredictPosteriorSample);

// --- tx.ckpt.v1 checkpoint cost: what a RetryPolicy with checkpoint_every=K
// amortizes over K SVI steps. The fixture is a store of 8 tensors totalling
// range(0) floats plus an Adam with live moments and a generator — the same
// three sections fit_svi snapshots.

struct CheckpointFixture {
  tx::ppl::ParamStore store;
  tx::infer::Adam opt{1e-3};
  tx::Generator gen{0};

  explicit CheckpointFixture(std::int64_t total_floats) {
    for (int i = 0; i < 8; ++i) {
      const std::string name = "layer" + std::to_string(i) + ".w";
      store.set(name,
                tx::randn({total_floats / 8}, &gen).set_requires_grad(true));
      opt.add_param(name, store.get(name));
      tx::sum(tx::square(store.get(name))).backward();
    }
    opt.step();  // populate the Adam moment buffers
  }

  tx::resil::Bundle bundle() const {
    tx::resil::Bundle b;
    b.set("store", tx::resil::param_store_bytes(store));
    b.set("optim", tx::resil::optimizer_bytes(opt));
    b.set("gen", tx::resil::generator_bytes(gen));
    return b;
  }
};

void BM_CheckpointSave(benchmark::State& state) {
  CheckpointFixture fx(state.range(0));
  const std::string path = "BENCH_checkpoint.ckpt";
  const std::size_t bytes = fx.bundle().serialize().size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.bundle().write_file(path));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
  std::remove(path.c_str());
}
BENCHMARK(BM_CheckpointSave)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_CheckpointLoad(benchmark::State& state) {
  CheckpointFixture fx(state.range(0));
  const std::string path = "BENCH_checkpoint.ckpt";
  fx.bundle().write_file(path);
  const std::size_t bytes = fx.bundle().serialize().size();
  for (auto _ : state) {
    tx::resil::Bundle b = tx::resil::Bundle::read_file(path);
    tx::resil::apply_param_store_bytes(b.get("store"), fx.store,
                                       /*prune_extra=*/true);
    tx::resil::apply_optimizer_bytes(b.get("optim"), fx.opt);
    tx::resil::apply_generator_bytes(b.get("gen"), fx.gen);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
  std::remove(path.c_str());
}
BENCHMARK(BM_CheckpointLoad)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

// --- tx::par thread-scaling variants: the argument is the pool size, so one
// run shows how each hot path scales (results are bitwise-identical across
// arguments by the tx::par determinism contract).

void BM_MatMulThreads(benchmark::State& state) {
  tx::par::set_num_threads(static_cast<int>(state.range(0)));
  tx::Generator gen(0);
  Tensor a = tx::randn({512, 512}, &gen);
  Tensor b = tx::randn({512, 512}, &gen);
  tx::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tx::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512 * 512);
  tx::par::set_num_threads(1);
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_Conv2dThreads(benchmark::State& state) {
  tx::par::set_num_threads(static_cast<int>(state.range(0)));
  tx::Generator gen(0);
  Tensor x = tx::randn({8, 16, 16, 16}, &gen);
  Tensor w = tx::randn({16, 16, 3, 3}, &gen);
  tx::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tx::conv2d(x, w, Tensor(), 1, 1));
  }
  tx::par::set_num_threads(1);
}
BENCHMARK(BM_Conv2dThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_MultiParticleElboThreads(benchmark::State& state) {
  tx::par::set_num_threads(static_cast<int>(state.range(0)));
  tx::manual_seed(0);
  tx::ppl::ParamStore store;
  Tensor data = tx::randn({32}, nullptr);
  tx::infer::Program model = [data] {
    Tensor z = tx::ppl::sample("z", std::make_shared<nd::Normal>(0.0f, 1.0f));
    tx::ppl::sample("obs", std::make_shared<nd::Normal>(z, Tensor::scalar(0.5f)),
                    data);
  };
  auto guide = std::make_shared<tx::infer::AutoNormal>(
      model, tx::infer::AutoNormalConfig{}, "g", &store);
  tx::infer::TraceELBO elbo(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        elbo.differentiable_loss(model, [guide] { (*guide)(); }));
  }
  tx::par::set_num_threads(1);
}
BENCHMARK(BM_MultiParticleElboThreads)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the shared obs flags (--prof etc.)
// are parsed and *stripped* first so google-benchmark never sees them, and
// the run ends by writing BENCH_microbench.json in the tx.obs.v1 snapshot
// schema — the same snapshot/diff pipeline as the figure benches. Iteration
// counts are time-adaptive, so prof aggregates here are machine-dependent;
// scripts/bench_diff.py compares this file with --no-gate-counts.
int main(int argc, char** argv) {
  const tx::obs::BenchFlags obs_flags = tx::obs::parse_bench_flags(argc, argv);
  if (obs_flags.prof) tx::obs::prof::set_enabled(true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!tx::obs::EventSink::write_snapshot("BENCH_microbench.json",
                                          "microbench")) {
    std::fprintf(stderr, "microbench: snapshot write failed\n");
    return 1;
  }
  std::printf("metrics: BENCH_microbench.json\n");
  return 0;
}
