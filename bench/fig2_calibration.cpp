// Reproduces Figure 2 of the paper: calibration curves and empirical CDFs of
// the predictive entropy on test vs OOD data, per inference strategy. Shares
// the training harness with table1_resnet (DESIGN.md, FIG2).
#include <cstdio>
#include <optional>

#include "metrics/metrics.h"
#include "obs/diag.h"
#include "obs/flags.h"
#include "obs/live.h"
#include "obs/manifest.h"
#include "obs/pq.h"
#include "obs/prof.h"
#include "ppl/diag.h"
#include "ppl/messenger.h"
#include "table1_harness.h"

int main(int argc, char** argv) {
  // --diag <path> (or TYXE_DIAG) streams inference health across every
  // strategy's SVI fit into one tx.diag.v1 snapshot (the snapshot's step
  // indices are the global diag sequence, so restarts between strategies
  // keep them monotone). --prof adds the kernel roofline / churn section to
  // the metrics snapshot. --pq streams predictive-quality telemetry (online
  // calibration / uncertainty decomposition / OOD scores) from the predict
  // path into a "pq" section and live pq.* metrics. See
  // docs/observability.md.
  const tx::obs::BenchFlags obs_flags = tx::obs::parse_bench_flags(argc, argv);
  const std::string& diag_path = obs_flags.diag_path;
  if (obs_flags.prof) tx::obs::prof::set_enabled(true);
  if (obs_flags.pq) tx::obs::pq::set_enabled(true);

  // --obs-http[=PORT] / TYXE_OBS_HTTP: live telemetry for the whole run
  // (/metrics, /healthz, /snapshot, /manifest); read-only, so results stay
  // bitwise-identical to a server-off run.
  tx::obs::live::Server live_server({obs_flags.http_port, "fig2_calibration"});
  if (obs_flags.http_port >= 0 && live_server.start()) {
    std::printf("obs-http: serving on http://127.0.0.1:%d\n",
                live_server.port());
  }

  tx::ppl::DiagnosticsMessenger diag_messenger;
  std::optional<tx::ppl::HandlerScope> diag_scope;
  if (!diag_path.empty()) {
    tx::obs::diag::set_enabled(true);
    diag_scope.emplace(diag_messenger);
  }

  bench::Table1Config cfg;
  // A slightly lighter run than Table 1: the curves need the probability
  // tables, not tight estimates of scalar metrics.
  cfg.num_pred_samples = 8;
  cfg.metrics_path = "BENCH_fig2_calibration.json";
  cfg.events_path = "BENCH_fig2_calibration.jsonl";
  tx::obs::manifest::set_field("seed", static_cast<std::int64_t>(cfg.seed));
  std::printf("Figure 2 reproduction (seed %llu)\n",
              static_cast<unsigned long long>(cfg.seed));
  auto run = bench::run_table1(cfg);

  std::printf("\n-- Calibration curves (10 bins; paper Fig. 2 top row) --\n");
  for (const auto& s : run.strategies) {
    std::printf("\n%s:\n  %10s %12s %10s %8s\n", s.name.c_str(), "bin",
                "confidence", "accuracy", "count");
    auto bins = tx::metrics::calibration_curve(s.test_probs, run.test_labels, 10);
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (bins[b].count == 0) continue;
      std::printf("  [%.1f,%.1f) %12.3f %10.3f %8lld\n",
                  0.1 * static_cast<double>(b),
                  0.1 * static_cast<double>(b + 1), bins[b].confidence,
                  bins[b].accuracy, static_cast<long long>(bins[b].count));
    }
  }

  std::printf("\n-- Empirical CDF of predictive entropy (paper Fig. 2 bottom "
              "row) --\n");
  const double max_h = std::log(10.0);
  std::vector<double> points;
  for (int i = 0; i <= 10; ++i) points.push_back(max_h * i / 10.0);
  std::printf("%-14s", "entropy");
  for (double p : points) std::printf(" %6.2f", p);
  std::printf("\n");
  for (const auto& s : run.strategies) {
    auto cdf_of = [&](const tx::Tensor& probs, const char* split) {
      auto cdf = tx::metrics::empirical_cdf(
          tx::metrics::predictive_entropy(probs), points);
      std::printf("%-9s %-4s", s.name.substr(0, 9).c_str(), split);
      for (double v : cdf) std::printf(" %6.2f", v);
      std::printf("\n");
    };
    cdf_of(s.test_probs, "test");
    cdf_of(s.ood_probs, "ood");
  }

  std::printf("\nShape to verify against the paper: Bayesian strategies shift "
              "OOD entropy CDFs right (more uncertainty on OOD)\nand MF gives "
              "the best-matching calibration curve (closest to the "
              "diagonal).\n");
  if (obs_flags.pq) {
    std::printf("\n-- Streaming predictive quality (tx.pq.v1; binned OOD "
                "AUROC) --\n");
    for (const auto& s : run.strategies) {
      const std::string stream = s.name + "/test";
      std::printf("  %-14s ece %.4f  nll %.4f  acc %.4f  brier %.4f  "
                  "ood_auroc %.4f\n",
                  s.name.c_str(), tx::obs::pq::streaming_ece(stream),
                  tx::obs::pq::streaming_nll(stream),
                  tx::obs::pq::streaming_accuracy(stream),
                  tx::obs::pq::streaming_brier(stream),
                  tx::obs::pq::ood_auroc(stream, s.name + "/ood"));
    }
  }
  if (!diag_path.empty()) {
    const bool ok =
        tx::obs::diag::write_snapshot(diag_path, "fig2_calibration");
    std::printf("diag: %s (%lld records, %lld nan trips)%s\n",
                diag_path.c_str(),
                static_cast<long long>(tx::obs::diag::records()),
                static_cast<long long>(tx::obs::diag::nan_trips()),
                ok ? "" : " [WRITE FAILED]");
    if (!ok) return 1;
  }
  return 0;
}
