// Ablation: the dataset_size / batch_size likelihood scaling that the
// Likelihood classes apply automatically ("our implementation automatically
// handles correctly scaling the KL-term vs the log likelihood", Sec. 2.2).
// We fit the conjugate Normal-Normal model from mini-batches with the
// correct scale, no scale, and an overcorrected scale, and compare the
// learned posterior to the analytic one.
#include <cmath>
#include <cstdio>

#include "core/tyxe.h"
#include "util/table.h"

using tx::Tensor;
namespace nd = tx::dist;

int main() {
  tx::manual_seed(0);
  tx::Generator gen(0);
  const std::int64_t n = 256, batch = 32;
  // Data from z* = 1: x_i ~ N(1, 0.5).
  Tensor data = tx::add(tx::mul(tx::randn({n}, &gen), Tensor::scalar(0.5f)),
                        Tensor::scalar(1.0f));
  // Analytic posterior for prior N(0,1), likelihood scale 0.5.
  float sum = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) sum += data.at(i);
  const float prec = 1.0f + static_cast<float>(n) / 0.25f;
  const float true_mean = (sum / 0.25f) / prec;
  const float true_std = 1.0f / std::sqrt(prec);

  auto run = [&](double scale_factor) {
    tx::ppl::ParamStore store;
    auto model = [&](const Tensor& batch_data) {
      Tensor z = tx::ppl::sample("z", std::make_shared<nd::Normal>(0.0f, 1.0f));
      tx::ppl::ScaleMessenger sm(scale_factor);
      tx::ppl::HandlerScope scope(sm);
      tx::ppl::sample("x",
                      std::make_shared<nd::Normal>(
                          tx::broadcast_to(z, batch_data.shape()),
                          tx::full(batch_data.shape(), 0.5f)),
                      batch_data);
    };
    auto guide = std::make_shared<tx::infer::AutoNormal>(
        [&] { model(tx::slice(data, 0, 0, batch)); },
        tx::infer::AutoNormalConfig{}, "g", &store);
    tx::infer::ClippedAdam optim(0.05, 10.0, 0.999);
    tx::infer::TraceMeanFieldELBO elbo;
    for (int epoch = 0; epoch < 150; ++epoch) {
      for (std::int64_t start = 0; start < n; start += batch) {
        Tensor b = tx::slice(data, 0, start, start + batch);
        for (auto& [pname, p] : store.items()) p.zero_grad();
        Tensor loss = elbo.differentiable_loss([&] { model(b); },
                                               [&] { (*guide)(); });
        loss.backward();
        for (auto& [pname, p] : store.items()) optim.add_param(p);
        optim.step();
      }
    }
    auto q = guide->site_distribution("z");
    return std::make_pair(q->loc().item(), q->scale().item());
  };

  const double correct = static_cast<double>(n) / static_cast<double>(batch);
  tx::Table table({"scaling", "posterior mean", "posterior std",
                   "std ratio vs exact"});
  auto add = [&](const std::string& name, double factor) {
    auto [m, s] = run(factor);
    table.add_row({name, tx::Table::fmt(m, 4), tx::Table::fmt(s, 4),
                   tx::Table::fmt(s / true_std, 2)});
  };
  add("correct (N/B = 8)", correct);
  add("none (1)", 1.0);
  add("overcorrected (N)", static_cast<double>(n));
  table.print("mini-batch KL/likelihood scaling ablation:");
  std::printf("\nexact posterior: mean %.4f, std %.4f\n", true_mean, true_std);
  std::printf("shape: without scaling the posterior is ~sqrt(N/B) too wide "
              "(likelihood undercounted);\novercorrecting collapses it. Only "
              "the dataset_size/batch_size scale recovers the exact one.\n");
  return 0;
}
