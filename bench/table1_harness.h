// Shared harness for Table 1 and Figure 2: trains a ResNet on the synthetic
// CIFAR analogue under each of the paper's six inference strategies (ML, MAP,
// MF sd-only, MF, last-layer MF, last-layer low-rank) and collects predictive
// probabilities on the test and OOD sets.
#pragma once

#include <string>
#include <vector>

#include "core/tyxe.h"
#include "data/datasets.h"

namespace bench {

struct Table1Config {
  std::int64_t num_classes = 10;
  std::int64_t per_class_train = 40;
  std::int64_t per_class_test = 20;
  std::int64_t num_ood = 200;
  std::int64_t image_size = 16;
  std::int64_t base_width = 8;
  float noise = 1.3f;  // tuned so ML lands at ~94% test accuracy (the paper regime)
  int ml_epochs = 80;  // long enough for ML to become (over)confident
  int map_epochs = 15;
  int vi_epochs = 15;
  int num_pred_samples = 16;
  std::int64_t batch_size = 64;
  std::uint64_t seed = 0;
  // Observability output: per-step loss events stream to `events_path`
  // (JSONL) and the final registry snapshot (timing histograms + per-strategy
  // loss series) lands in `metrics_path`. Empty strings disable either.
  std::string metrics_path = "BENCH_table1_harness.json";
  std::string events_path = "BENCH_table1_harness.jsonl";
};

struct StrategyResult {
  std::string name;
  double nll = 0.0;
  double accuracy = 0.0;
  double ece = 0.0;
  double ood_auroc = 0.0;
  tx::Tensor test_probs;  // (N_test, classes)
  tx::Tensor ood_probs;   // (N_ood, classes)
};

struct Table1Run {
  std::vector<StrategyResult> strategies;
  tx::Tensor test_labels;
};

/// Runs the full experiment. Strategy order matches the paper's Table 1.
Table1Run run_table1(const Table1Config& config);

}  // namespace bench
