// Reproduces Table 1 of the paper: Bayesian ResNet predictive performance
// (NLL / Accuracy / ECE / OOD-AUROC) for six inference strategies, on the
// synthetic CIFAR analogue (DESIGN.md, TAB1). Absolute numbers differ from
// the paper (different data, CPU-scale network); the orderings are what is
// reproduced — see EXPERIMENTS.md.
#include <cstdio>

#include "obs/flags.h"
#include "obs/live.h"
#include "obs/manifest.h"
#include "obs/pq.h"
#include "obs/prof.h"
#include "table1_harness.h"
#include "util/table.h"

int main(int argc, char** argv) {
  // Shared observability switches (--trace/--diag/--prof/--pq/--obs-http),
  // same surface as fig1/fig2/par_scaling. parse_bench_flags also audits
  // TYXE_* env vars and freezes the run manifest.
  const tx::obs::BenchFlags obs_flags = tx::obs::parse_bench_flags(argc, argv);
  if (obs_flags.prof) tx::obs::prof::set_enabled(true);
  if (obs_flags.pq) tx::obs::pq::set_enabled(true);
  tx::obs::live::Server live_server({obs_flags.http_port, "table1_resnet"});
  if (obs_flags.http_port >= 0 && live_server.start()) {
    std::printf("obs-http: serving on http://127.0.0.1:%d\n",
                live_server.port());
  }

  bench::Table1Config cfg;
  tx::obs::manifest::set_field("seed", static_cast<std::int64_t>(cfg.seed));
  std::printf("Table 1 reproduction (seed %llu): ResNet-8/width %lld on "
              "synthetic CIFAR-10 analogue\n",
              static_cast<unsigned long long>(cfg.seed),
              static_cast<long long>(cfg.base_width));
  auto run = bench::run_table1(cfg);

  tx::Table table({"Inference", "NLL(down)", "Acc(up, %)", "ECE(down, %)", "OOD(up)"});
  for (const auto& s : run.strategies) {
    table.add_row({s.name, tx::Table::fmt(s.nll, 2),
                   tx::Table::fmt(100.0 * s.accuracy, 2),
                   tx::Table::fmt(100.0 * s.ece, 2),
                   tx::Table::fmt(s.ood_auroc, 2)});
  }
  table.print("\nBayesian ResNet predictive performance (paper Table 1):");

  std::printf("\nPaper (CIFAR10/ResNet-18, for shape comparison):\n"
              "  ML   0.33 / 94.29 / 4.10 / 0.78\n"
              "  MAP  0.29 / 92.14 / 4.44 / 0.82\n"
              "  MF(sd only) 0.27 / 93.66 / 3.14 / 0.93\n"
              "  MF   0.20 / 93.28 / 0.97 / 0.94\n"
              "  LL MF 0.35 / 93.36 / 3.62 / 0.89\n"
              "  LL low rank 0.34 / 93.31 / 3.75 / 0.89\n");
  return 0;
}
