// Reproduces Figure 1 of the paper: Bayesian nonlinear regression on the
// Foong et al. (2019) setup, comparing (a) mean-field VI with local
// reparameterization, (b) the same posterior with shared weight samples, and
// (c) HMC. Prints the predictive mean and ±std band on a grid — the series
// behind the three panels — plus the in-between-uncertainty summary that
// distinguishes HMC from mean field (DESIGN.md, FIG1).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "core/tyxe.h"
#include "data/datasets.h"
#include "obs/obs.h"
#include "par/pool.h"
#include "ppl/diag.h"
#include "ppl/profiling.h"
#include "resil/fault.h"

using tx::Tensor;

namespace {

struct Band {
  std::vector<double> mean, std;
};

Band band_from(const Tensor& stacked, const tyxe::HomoskedasticGaussian& lik) {
  Band band;
  Tensor mean = tx::mean(stacked, {0});
  Tensor std = lik.predictive_std(stacked);
  for (std::int64_t i = 0; i < mean.numel(); ++i) {
    band.mean.push_back(mean.at(i));
    band.std.push_back(std.at(i));
  }
  return band;
}

/// Mean predictive std over a closed interval of the grid.
double mean_std_on(const Band& band, const Tensor& grid, double lo, double hi) {
  double total = 0.0;
  int count = 0;
  for (std::int64_t i = 0; i < grid.numel(); ++i) {
    if (grid.at(i) >= lo && grid.at(i) <= hi) {
      total += band.std[static_cast<std::size_t>(i)];
      ++count;
    }
  }
  return count > 0 ? total / count : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = 0;
  tx::manual_seed(seed);
  tx::Generator gen(seed);
  std::printf("Figure 1 reproduction (seed %llu)\n",
              static_cast<unsigned long long>(seed));

  // Shared observability flags: --trace <path> records a Chrome-trace
  // timeline, --diag <path> streams inference health, --prof enables the
  // kernel roofline / allocator-churn profiler (its "prof" section lands in
  // BENCH_fig1_regression.json). Env fallbacks TYXE_TRACE/TYXE_DIAG/
  // TYXE_PROF. See docs/observability.md.
  const tx::obs::BenchFlags obs_flags = tx::obs::parse_bench_flags(argc, argv);
  const std::string& trace_path = obs_flags.trace_path;
  if (obs_flags.prof) tx::obs::prof::set_enabled(true);
  tx::obs::manifest::set_field("seed", static_cast<std::int64_t>(seed));

  // --obs-http[=PORT] / TYXE_OBS_HTTP: live telemetry for the whole run
  // (/metrics, /healthz, /snapshot, /manifest). Scraping is read-only, so
  // results stay bitwise-identical to a server-off run (CI enforces this).
  tx::obs::live::Server live_server({obs_flags.http_port, "fig1_regression"});
  if (obs_flags.http_port >= 0 && live_server.start()) {
    std::printf("obs-http: serving on http://127.0.0.1:%d\n",
                live_server.port());
  }
  if (!trace_path.empty()) {
    tx::obs::set_trace_thread_name("main");
    tx::obs::start_tracing();
  }
  // Every ppl sample/observe site becomes a timeline tick (no-op untraced).
  tx::ppl::TracingMessenger site_tracer;
  tx::ppl::HandlerScope site_scope(site_tracer);

  // --checkpoint-every <K> switches the VI fit onto the fault-tolerant
  // tx::resil driver: a tx.ckpt.v1 checkpoint (--checkpoint <path>, default
  // fig1.ckpt) every K steps, resumed automatically when the file already
  // exists. A run interrupted mid-fit and re-launched with the same flags
  // produces bitwise-identical output to an uninterrupted one — see
  // docs/robustness.md. The printed vi_fit wall time quantifies the
  // checkpointing overhead against a flagless run.
  std::int64_t checkpoint_every = 0;
  std::string checkpoint_path = "fig1.ckpt";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--checkpoint-every" && i + 1 < argc) {
      checkpoint_every = std::atoll(argv[++i]);
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      checkpoint_path = argv[++i];
    }
  }
  // Resilient and watchdog runs opt into the TYXE_FAULT injection harness,
  // so CI can exercise NaN-gradient rollback, failed-checkpoint-write
  // handling, and stall detection on this exact workload (fault plans are
  // inert without the env var).
  if ((checkpoint_every > 0 || obs_flags.watchdog) &&
      tx::fault::install_from_env()) {
    std::printf("fault plan installed from TYXE_FAULT\n");
  }

  // --watchdog / TYXE_WATCHDOG: monitor the driver heartbeat for the whole
  // run; a stall (TYXE_HEALTH_STALE_S) produces a tx.diag.forensic.v1 dump
  // and flips /healthz to 503 until the heartbeat recovers. A short poll
  // interval keeps the CI guard leg (sub-second thresholds) responsive.
  tx::obs::Watchdog watchdog(
      {tx::obs::live::default_staleness_seconds(),
       /*poll_interval_seconds=*/0.1, /*escalate_cancel=*/false});
  if (obs_flags.watchdog) {
    watchdog.start();
    std::printf("watchdog: monitoring heartbeat (stale after %.1fs)\n",
                tx::obs::live::default_staleness_seconds());
  }

  // Diagnostics (per-site variational drift/KL, gradient SNR, per-site
  // R̂/ESS and divergence blame for HMC) into a tx.diag.v1 snapshot.
  const std::string& diag_path = obs_flags.diag_path;
  tx::ppl::DiagnosticsMessenger diag_messenger;
  std::optional<tx::ppl::HandlerScope> diag_scope;
  if (!diag_path.empty()) {
    tx::obs::diag::set_enabled(true);
    diag_scope.emplace(diag_messenger);
  }

  if (!trace_path.empty()) {
    // Fig 1's MLP (1-50-1, batch 64) sits below the kernel fan-out
    // thresholds, so the model run alone would leave the per-worker tracks
    // empty. Run one labeled big matmul forward+backward over 4 threads so
    // the exported trace always demonstrates pool-worker attribution. A
    // private generator keeps the bench's own numbers untouched.
    tx::obs::ScopedTimer span("trace.kernel_preamble");
    const int prev_threads = tx::par::num_threads();
    tx::par::set_num_threads(std::max(4, prev_threads));
    tx::Generator pre_gen(123);
    Tensor a = tx::randn({256, 256}, &pre_gen).set_requires_grad(true);
    Tensor b = tx::randn({256, 256}, &pre_gen);
    tx::sum(tx::matmul(a, b)).backward();
    tx::par::set_num_threads(prev_threads);
  }

  // Observability: per-step VI losses and per-transition HMC acceptance
  // stream as JSONL; the registry snapshot (loss series + timing histograms)
  // is written as BENCH_fig1_regression.json at the end.
  tx::obs::EventSink sink("BENCH_fig1_regression.jsonl");
  std::vector<double> vi_losses, hmc_accepts;

  const std::int64_t n = 64;
  auto data = tx::data::make_foong_regression(n, gen);
  Tensor grid = tx::linspace(-1.5f, 1.5f, 41).reshape({41, 1});

  auto make_bnn = [&](tx::Generator& g) {
    auto net = tx::nn::make_mlp({1, 50, 1}, "tanh", &g);
    auto lik = std::make_shared<tyxe::HomoskedasticGaussian>(n, 0.1f);
    auto prior = std::make_shared<tyxe::IIDPrior>(
        std::make_shared<tx::dist::Normal>(0.0f, 1.0f));
    return std::make_pair(
        std::make_shared<tyxe::VariationalBNN>(
            net, prior, lik, tyxe::guides::auto_normal_factory()),
        lik);
  };

  // (a) mean-field VI trained with local reparameterization.
  auto [bnn, lik] = make_bnn(gen);
  bnn->set_step_callback([&](const tx::infer::SVIStepInfo& s) {
    vi_losses.push_back(s.loss);
    tx::obs::Event e;
    e.set("phase", "vi")
        .set("step", s.step)
        .set("loss", s.loss)
        .set("grad_norm", s.grad_norm)
        .set("seconds", s.seconds);
    sink.emit(e);
  });
  tx::Generator vi_gen(seed + 2);
  tx::resil::FitReport ckpt_report;
  double vi_seconds = 0.0;
  {
    tx::obs::ScopedTimer span("fig1.vi_fit");
    const auto t0 = std::chrono::steady_clock::now();
    tyxe::poutine::LocalReparameterization lr;
    auto optim = std::make_shared<tx::infer::Adam>(1e-2);
    if (checkpoint_every > 0) {
      // Resumable runs pin all fit-time sampling to a private generator so
      // the RNG stream is part of the checkpoint (docs/robustness.md).
      bnn->set_generator(&vi_gen);
      tx::resil::RetryPolicy policy;
      policy.checkpoint_path = checkpoint_path;
      policy.checkpoint_every = checkpoint_every;
      ckpt_report = bnn->fit({{{data.x}, data.y}}, optim, 2000, policy);
    } else {
      bnn->fit({{{data.x}, data.y}}, optim, 2000);
    }
    vi_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  Band lr_band, shared_band;
  {
    // Fig 1(a): predictions also drawn under local reparameterization —
    // per-point output samples.
    tyxe::poutine::LocalReparameterization lr;
    lr_band = band_from(bnn->predict(grid, 64, false), *lik);
  }
  // Fig 1(b): same posterior, same bnn object, shared weight samples —
  // just dedent the predict call out of the context.
  shared_band = band_from(bnn->predict(grid, 64, false), *lik);

  // (c) HMC on the same model.
  tx::Generator hmc_gen(seed + 1);
  auto hmc_net = tx::nn::make_mlp({1, 50, 1}, "tanh", &hmc_gen);
  auto hmc_lik = std::make_shared<tyxe::HomoskedasticGaussian>(n, 0.1f);
  tyxe::MCMC_BNN hmc_bnn(
      hmc_net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<tx::dist::Normal>(0.0f, 1.0f)),
      hmc_lik, [] { return std::make_shared<tx::infer::HMC>(5e-4, 30); });
  {
    tx::obs::ScopedTimer span("fig1.hmc_fit");
    hmc_bnn.fit({data.x}, data.y, /*num_samples=*/200, /*warmup=*/200,
                &hmc_gen, [&](const tx::infer::MCMCProgress& p) {
                  hmc_accepts.push_back(p.accept_prob);
                  tx::obs::Event e;
                  e.set("phase", p.warmup ? "hmc_warmup" : "hmc_sampling")
                      .set("step", p.step)
                      .set("accept_prob", p.accept_prob)
                      .set("mean_accept_prob", p.mean_accept_prob)
                      .set("divergences", p.divergences)
                      .set("seconds", p.seconds);
                  sink.emit(e);
                });
  }
  Band hmc_band = band_from(hmc_bnn.predict(grid, 64, false), *hmc_lik);

  std::printf("\n%8s | %9s %9s | %9s %9s | %9s %9s\n", "x", "LR mean",
              "LR std", "SW mean", "SW std", "HMC mean", "HMC std");
  for (std::int64_t i = 0; i < grid.numel(); ++i) {
    const auto u = static_cast<std::size_t>(i);
    std::printf("%8.3f | %9.4f %9.4f | %9.4f %9.4f | %9.4f %9.4f\n",
                grid.at(i), lr_band.mean[u], lr_band.std[u],
                shared_band.mean[u], shared_band.std[u], hmc_band.mean[u],
                hmc_band.std[u]);
  }

  // Shape checks mirroring the figure: uncertainty grows in the data gap
  // (-0.7, 0.5) and outside the data, and HMC shows the largest in-between
  // uncertainty (the Foong et al. observation).
  const double lr_gap = mean_std_on(lr_band, grid, -0.5, 0.3);
  const double lr_data = mean_std_on(lr_band, grid, -1.0, -0.7);
  const double hmc_gap = mean_std_on(hmc_band, grid, -0.5, 0.3);
  const double hmc_data = mean_std_on(hmc_band, grid, -1.0, -0.7);
  std::printf("\nsummary:\n");
  std::printf("  VI  std: data region %.3f, gap %.3f (ratio %.2f)\n", lr_data,
              lr_gap, lr_gap / lr_data);
  std::printf("  HMC std: data region %.3f, gap %.3f (ratio %.2f)\n", hmc_data,
              hmc_gap, hmc_gap / hmc_data);
  std::printf("  HMC acceptance %.2f\n", hmc_bnn.mcmc().mean_accept_prob());
  std::printf("  VI fit wall time %.3f s\n", vi_seconds);
  if (checkpoint_every > 0) {
    std::printf(
        "  checkpointing: every %lld steps -> %s (%lld snapshots, %lld "
        "rollbacks%s%s)\n",
        static_cast<long long>(checkpoint_every), checkpoint_path.c_str(),
        static_cast<long long>(ckpt_report.checkpoints),
        static_cast<long long>(ckpt_report.rollbacks),
        ckpt_report.resumed ? ", resumed" : "",
        ckpt_report.checkpoint_failures > 0 ? ", WRITE FAILURES" : "");
  }
  std::printf("  paper shape: both inflate uncertainty off-data; HMC's "
              "in-between band is widest.\n");

  {
    tx::obs::Event e;
    e.set("event", "summary")
        .set("vi_gap_std", lr_gap)
        .set("vi_data_std", lr_data)
        .set("hmc_gap_std", hmc_gap)
        .set("hmc_data_std", hmc_data)
        .set("hmc_mean_accept", hmc_bnn.mcmc().mean_accept_prob())
        .set("hmc_divergences", hmc_bnn.mcmc().divergence_count())
        .set("vi_fit_seconds", vi_seconds)
        .set("checkpoint_every", checkpoint_every)
        .set("checkpoints", ckpt_report.checkpoints)
        .set("checkpoint_rollbacks", ckpt_report.rollbacks)
        .set("resumed", ckpt_report.resumed ? 1 : 0);
    sink.emit(e);
  }
  tx::obs::EventSink::write_snapshot(
      "BENCH_fig1_regression.json", "fig1_regression", tx::obs::registry(),
      {{"vi_loss", vi_losses}, {"hmc_accept_prob", hmc_accepts}});
  std::printf("  events:  %s (%lld lines)\n", sink.path().c_str(),
              static_cast<long long>(sink.events_written()));
  std::printf("  metrics: BENCH_fig1_regression.json\n");
  if (obs_flags.prof) {
    std::int64_t flops = 0;
    for (const auto& [name, ks] : tx::obs::prof::kernel_table()) {
      flops += ks.flops;
    }
    const std::int64_t window = tx::obs::prof::window_allocated_bytes();
    const double coverage =
        window > 0 ? 100.0 * static_cast<double>(
                                 tx::obs::prof::attributed_bytes()) /
                         static_cast<double>(window)
                   : 100.0;
    std::printf("  prof:    %zu kernels, %.3f GFLOP, churn coverage %.1f%%\n",
                tx::obs::prof::kernel_table().size(),
                static_cast<double>(flops) / 1e9, coverage);
  }
  if (!diag_path.empty()) {
    const bool ok = tx::obs::diag::write_snapshot(diag_path, "fig1_regression");
    std::printf("  diag:    %s (%lld records, %lld nan trips)%s\n",
                diag_path.c_str(),
                static_cast<long long>(tx::obs::diag::records()),
                static_cast<long long>(tx::obs::diag::nan_trips()),
                ok ? "" : " [WRITE FAILED]");
    if (!ok) return 1;
  }
  if (!trace_path.empty()) {
    tx::obs::stop_tracing();
    const bool ok = tx::obs::write_trace(trace_path);
    std::printf("  trace:   %s (%lld events, %lld dropped, %lld ppl sites)%s\n",
                trace_path.c_str(),
                static_cast<long long>(tx::obs::trace_event_count()),
                static_cast<long long>(tx::obs::trace_dropped_count()),
                static_cast<long long>(site_tracer.sites_traced()),
                ok ? "" : " [WRITE FAILED]");
    if (!ok) return 1;
  }
  return 0;
}
