// End-to-end tests for the BNN classes: construction (the paper's 5-line
// Listing 1), fitting, prediction, hidden parameters, PytorchBNN drop-in use,
// MCMC_BNN, and the VCL prior update.
#include <gtest/gtest.h>

#include <cmath>

#include "core/tyxe.h"

namespace tyxe {
namespace {

namespace nd = tx::dist;
using tx::Shape;
using tx::Tensor;

/// The paper's regression data (Foong et al., 2019).
std::pair<Tensor, Tensor> make_regression_data(std::int64_t n,
                                               tx::Generator& gen) {
  std::vector<float> xs, ys;
  for (std::int64_t i = 0; i < n; ++i) {
    const float x = static_cast<float>(
        i % 2 == 0 ? gen.uniform(-1.0, -0.7) : gen.uniform(0.5, 1.0));
    xs.push_back(x);
    ys.push_back(static_cast<float>(std::cos(4.0f * x + 0.8f) +
                                    gen.normal(0.0, 0.1)));
  }
  return {Tensor(Shape{n, 1}, std::move(xs)), Tensor(Shape{n, 1}, std::move(ys))};
}

std::shared_ptr<VariationalBNN> make_regression_bnn(tx::Generator& gen,
                                                    std::int64_t n_data) {
  // Listing 1 in five statements.
  auto net = tx::nn::make_mlp({1, 20, 1}, "tanh", &gen);
  auto likelihood = std::make_shared<HomoskedasticGaussian>(n_data, 0.1f);
  auto prior = std::make_shared<IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f));
  auto guide_factory = guides::auto_normal_factory();
  return std::make_shared<VariationalBNN>(net, prior, likelihood, guide_factory);
}

TEST(BNNBase, SiteNamesFollowParamPaths) {
  tx::Generator gen(1);
  auto net = tx::nn::make_mlp({1, 4, 1}, "tanh", &gen);
  BNNBase bnn(net, std::make_shared<IIDPrior>(
                       std::make_shared<nd::Normal>(0.0f, 1.0f)));
  auto names = bnn.site_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "net.0.weight");
  EXPECT_EQ(names[3], "net.2.bias");
}

TEST(BNNBase, HiddenParamsStayDeterministic) {
  tx::Generator gen(2);
  auto net = tx::nn::make_mlp({1, 4, 1}, "tanh", &gen);
  HideExpose filter;
  filter.hide_parameters = {"bias"};
  BNNBase bnn(net, std::make_shared<IIDPrior>(
                       std::make_shared<nd::Normal>(0.0f, 1.0f), filter));
  EXPECT_EQ(bnn.sites().size(), 2u);  // weights only
  // Hidden params live in the store for the optimizer.
  EXPECT_TRUE(bnn.param_store().contains("net.0.bias"));
  EXPECT_TRUE(bnn.param_store().contains("net.2.bias"));
  EXPECT_FALSE(bnn.param_store().contains("net.0.weight"));
}

TEST(BNNBase, SampledForwardIsStochastic) {
  tx::manual_seed(3);
  tx::Generator gen(3);
  auto net = tx::nn::make_mlp({1, 8, 1}, "tanh", &gen);
  BNNBase bnn(net, std::make_shared<IIDPrior>(
                       std::make_shared<nd::Normal>(0.0f, 1.0f)));
  Tensor x = tx::ones({1, 1});
  Tensor a = bnn.sampled_forward(x);
  Tensor b = bnn.sampled_forward(x);
  EXPECT_FALSE(tx::allclose(a, b));
}

TEST(BNNBase, ResNetBatchNormHiding) {
  // The paper's Listing 3 configuration: BatchNorm params deterministic.
  tx::Generator gen(4);
  auto net = tx::nn::make_resnet8(10, 4, 3, &gen);
  HideExpose filter;
  filter.hide_module_types = {"BatchNorm2d"};
  BNNBase bnn(net, std::make_shared<IIDPrior>(
                       std::make_shared<nd::Normal>(0.0f, 1.0f), filter));
  for (const auto& name : bnn.site_names()) {
    EXPECT_EQ(name.find("bn"), std::string::npos) << name;
    EXPECT_EQ(name.find("downsample_bn"), std::string::npos) << name;
  }
  EXPECT_TRUE(bnn.param_store().contains("net.bn1.weight"));
}

TEST(BNNBase, FinalLayerOnlyInference) {
  // Lines 9-11 of Listing 3: expose only the final fully-connected layer.
  tx::Generator gen(5);
  auto net = tx::nn::make_resnet8(10, 4, 3, &gen);
  HideExpose filter;
  filter.expose_modules = {"fc"};
  BNNBase bnn(net, std::make_shared<IIDPrior>(
                       std::make_shared<nd::Normal>(0.0f, 1.0f), filter));
  ASSERT_EQ(bnn.sites().size(), 2u);
  EXPECT_EQ(bnn.sites()[0].name, "net.fc.weight");
  EXPECT_EQ(bnn.sites()[1].name, "net.fc.bias");
}

TEST(VariationalBNN, FitReducesErrorOnRegression) {
  tx::manual_seed(6);
  tx::Generator gen(6);
  auto [x, y] = make_regression_data(64, gen);
  auto bnn = make_regression_bnn(gen, 64);
  auto [ll0, err0] = bnn->evaluate({x}, y, 8);
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  std::vector<Batch> data{{{x}, y}};
  bnn->fit(data, optim, 600);
  auto [ll1, err1] = bnn->evaluate({x}, y, 8);
  EXPECT_LT(err1, err0);
  EXPECT_GT(ll1, ll0);
  EXPECT_LT(err1, 0.12);
}

TEST(VariationalBNN, PredictShapesAndAggregation) {
  tx::manual_seed(7);
  tx::Generator gen(7);
  auto bnn = make_regression_bnn(gen, 16);
  Tensor x = tx::linspace(-1.0f, 1.0f, 5).reshape({5, 1});
  Tensor stacked = bnn->predict(x, 4, /*aggregate=*/false);
  EXPECT_EQ(stacked.shape(), (Shape{4, 5, 1}));
  Tensor agg = bnn->predict(x, 4, /*aggregate=*/true);
  EXPECT_EQ(agg.shape(), (Shape{5, 1}));
  EXPECT_THROW(bnn->predict(x, 0), tx::Error);
}

TEST(VariationalBNN, CallbackStopsEarly) {
  tx::manual_seed(8);
  tx::Generator gen(8);
  auto [x, y] = make_regression_data(16, gen);
  auto bnn = make_regression_bnn(gen, 16);
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  int epochs_seen = 0;
  bnn->fit({{{x}, y}}, optim, 100, [&](int epoch, double elbo) {
    (void)elbo;
    epochs_seen = epoch + 1;
    return epoch >= 4;  // stop after 5 epochs
  });
  EXPECT_EQ(epochs_seen, 5);
}

TEST(VariationalBNN, MeanFieldElboWorksWithAnalyticKL) {
  tx::manual_seed(9);
  tx::Generator gen(9);
  auto [x, y] = make_regression_data(32, gen);
  auto bnn = make_regression_bnn(gen, 32);
  bnn->set_elbo(std::make_shared<tx::infer::TraceMeanFieldELBO>(1));
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  double elbo = bnn->fit({{{x}, y}}, optim, 100);
  EXPECT_TRUE(std::isfinite(elbo));
  auto [ll, err] = bnn->evaluate({x}, y, 8);
  EXPECT_LT(err, 0.3);
}

TEST(VariationalBNN, LocalReparamScopeAroundFit) {
  // The paper's Listing 2: wrap fit in the local_reparameterization context.
  tx::manual_seed(10);
  tx::Generator gen(10);
  auto [x, y] = make_regression_data(32, gen);
  auto bnn = make_regression_bnn(gen, 32);
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  {
    poutine::LocalReparameterization lr;
    bnn->fit({{{x}, y}}, optim, 150);
  }
  auto [ll, err] = bnn->evaluate({x}, y, 8);
  EXPECT_LT(err, 0.15);
}

TEST(VariationalBNN, FlipoutScopeAroundFit) {
  tx::manual_seed(11);
  tx::Generator gen(11);
  auto [x, y] = make_regression_data(32, gen);
  auto bnn = make_regression_bnn(gen, 32);
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  {
    poutine::Flipout flip;
    bnn->fit({{{x}, y}}, optim, 150);
  }
  auto [ll, err] = bnn->evaluate({x}, y, 8);
  EXPECT_LT(err, 0.15);
}

TEST(VariationalBNN, MapViaAutoDelta) {
  tx::manual_seed(12);
  tx::Generator gen(12);
  auto [x, y] = make_regression_data(32, gen);
  auto net = tx::nn::make_mlp({1, 16, 1}, "tanh", &gen);
  auto bnn = std::make_shared<VariationalBNN>(
      net, std::make_shared<IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<HomoskedasticGaussian>(32, 0.1f),
      guides::auto_delta_factory());
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  bnn->fit({{{x}, y}}, optim, 600);
  auto [ll, err] = bnn->evaluate({x}, y, 1);
  EXPECT_LT(err, 0.06);
  // MAP predictions are deterministic: repeated draws agree.
  Tensor p = bnn->predict(x, 2, /*aggregate=*/false);
  EXPECT_TRUE(tx::allclose(tx::slice(p, 0, 0, 1), tx::slice(p, 0, 1, 2), 1e-5f));
}

TEST(VariationalBNN, LatentLikelihoodScaleIsInferred) {
  tx::manual_seed(13);
  tx::Generator gen(13);
  // Pure-noise target around a constant: true observation scale = 0.5.
  Tensor x = tx::zeros({64, 1});
  Tensor y = tx::mul(tx::randn({64, 1}, &gen), Tensor::scalar(0.5f));
  auto net = tx::nn::make_mlp({1, 4, 1}, "tanh", &gen);
  auto scale_prior = std::make_shared<nd::LogNormal>(Tensor::scalar(0.0f),
                                                     Tensor::scalar(1.0f));
  auto lik = std::make_shared<HomoskedasticGaussian>(64, scale_prior);
  auto bnn = std::make_shared<VariationalBNN>(
      net, std::make_shared<IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      lik, guides::auto_normal_factory(), guides::lognormal_scale_factory());
  auto optim = std::make_shared<tx::infer::Adam>(2e-2);
  bnn->fit({{{x}, y}}, optim, 400);
  // Posterior mean of the scale should be near 0.5.
  const float loc =
      bnn->param_store().get("likelihood_guide.loc.likelihood.data.scale").item();
  EXPECT_NEAR(std::exp(loc), 0.5f, 0.15f);
}

TEST(PytorchBNN, DropInForwardAndKl) {
  tx::manual_seed(14);
  tx::Generator gen(14);
  auto net = tx::nn::make_mlp({2, 8, 1}, "tanh", &gen);
  PytorchBNN bnn(net, std::make_shared<IIDPrior>(
                          std::make_shared<nd::Normal>(0.0f, 1.0f)),
                 guides::auto_normal_factory());
  Tensor x = tx::randn({4, 2}, &gen);
  EXPECT_THROW(bnn.cached_kl_loss(), tx::Error);  // before any forward
  Tensor out = bnn.forward(x);
  EXPECT_EQ(out.shape(), (Shape{4, 1}));
  Tensor kl = bnn.cached_kl_loss();
  EXPECT_GE(kl.item(), 0.0f);  // analytic Normal-Normal KL
  // Stochastic: two forwards differ.
  EXPECT_FALSE(tx::allclose(out, bnn.forward(x)));
}

TEST(PytorchBNN, PytorchParametersCollectsGuideParams) {
  tx::manual_seed(15);
  tx::Generator gen(15);
  auto net = tx::nn::make_mlp({2, 4, 1}, "tanh", &gen);
  PytorchBNN bnn(net, std::make_shared<IIDPrior>(
                          std::make_shared<nd::Normal>(0.0f, 1.0f)),
                 guides::auto_normal_factory());
  auto params = bnn.pytorch_parameters({tx::randn({1, 2}, &gen)});
  // loc + scale per site, 4 sites.
  EXPECT_EQ(params.size(), 8u);
  for (const auto& p : params) EXPECT_TRUE(p.requires_grad());
}

TEST(PytorchBNN, TrainsWithPlainOptimizer) {
  // The NeRF workflow: custom loss + scaled cached KL + torch-style optimizer.
  tx::manual_seed(16);
  tx::Generator gen(16);
  Tensor x = tx::randn({32, 2}, &gen);
  Tensor targets = tx::sum(x, {1}, true).detach();  // y = x0 + x1
  auto net = tx::nn::make_mlp({2, 16, 1}, "tanh", &gen);
  PytorchBNN bnn(net, std::make_shared<IIDPrior>(
                          std::make_shared<nd::Normal>(0.0f, 1.0f)),
                 guides::auto_normal_factory());
  tx::infer::Adam optim(1e-2);
  optim.add_params(bnn.pytorch_parameters({x}));
  double first_loss = 0, last_loss = 0;
  for (int step = 0; step < 400; ++step) {
    optim.zero_grad();
    Tensor pred = bnn.forward(x);
    Tensor mse = tx::mean(tx::square(tx::sub(pred, targets)));
    Tensor loss = tx::add(mse, tx::mul(bnn.cached_kl_loss(),
                                       Tensor::scalar(1e-4f)));
    loss.backward();
    optim.step();
    if (step == 0) first_loss = loss.item();
    if (step == 399) last_loss = loss.item();
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
}

TEST(MCMCBNN, HmcRegressionBeatsPrior) {
  tx::manual_seed(17);
  tx::Generator gen(17);
  auto [x, y] = make_regression_data(24, gen);
  auto net = tx::nn::make_mlp({1, 8, 1}, "tanh", &gen);
  MCMC_BNN bnn(net,
               std::make_shared<IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
               std::make_shared<HomoskedasticGaussian>(24, 0.1f),
               [] { return std::make_shared<tx::infer::HMC>(0.001, 12); });
  EXPECT_THROW(bnn.predict(x, 1), tx::Error);  // before fit
  bnn.fit({x}, y, /*num_samples=*/60, /*warmup=*/60, &gen);
  auto [ll, err] = bnn.evaluate({x}, y, 20);
  EXPECT_LT(err, 0.30);
  EXPECT_GT(bnn.mcmc().mean_accept_prob(), 0.2);
}

TEST(MCMCBNN, NutsKernelRuns) {
  tx::manual_seed(18);
  tx::Generator gen(18);
  auto [x, y] = make_regression_data(12, gen);
  auto net = tx::nn::make_mlp({1, 4, 1}, "tanh", &gen);
  MCMC_BNN bnn(net,
               std::make_shared<IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
               std::make_shared<HomoskedasticGaussian>(12, 0.1f),
               [] { return std::make_shared<tx::infer::NUTS>(0.002, 5); });
  bnn.fit({x}, y, 20, 20, &gen);
  Tensor pred = bnn.predict(x, 8, /*aggregate=*/false);
  EXPECT_EQ(pred.dim(0), 8);
}

TEST(VCL, UpdatePriorToPosterior) {
  tx::manual_seed(19);
  tx::Generator gen(19);
  auto [x, y] = make_regression_data(24, gen);
  auto bnn = make_regression_bnn(gen, 24);
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  bnn->fit({{{x}, y}}, optim, 100);
  // Listing 6: posterior becomes the new prior.
  util::update_prior_to_posterior(*bnn);
  // The new prior at each site matches the guide's detached posterior.
  auto posts = bnn->net_guide().get_detached_distributions(bnn->site_names());
  for (const auto& site : bnn->sites()) {
    auto* prior_n = dynamic_cast<nd::Normal*>(site.prior.get());
    auto* post_n = dynamic_cast<nd::Normal*>(posts.at(site.name).get());
    ASSERT_NE(prior_n, nullptr);
    ASSERT_NE(post_n, nullptr);
    EXPECT_TRUE(tx::allclose(prior_n->loc(), post_n->loc(), 1e-5f));
    EXPECT_FALSE(prior_n->loc().requires_grad());
  }
  // Fitting continues seamlessly on "task 2" data.
  auto [x2, y2] = make_regression_data(24, gen);
  double elbo = bnn->fit({{{x2}, y2}}, optim, 20);
  EXPECT_TRUE(std::isfinite(elbo));
}

TEST(VCL, PriorUpdateChangesRegularizationPull) {
  // After updating the prior to a posterior centred away from zero, the KL
  // at zero-centred guides should be positive and larger than before.
  tx::manual_seed(20);
  tx::Generator gen(20);
  auto net = tx::nn::make_mlp({1, 4, 1}, "tanh", &gen);
  BNNBase bnn(net, std::make_shared<IIDPrior>(
                       std::make_shared<nd::Normal>(0.0f, 1.0f)));
  std::map<std::string, nd::DistPtr> posts;
  for (const auto& site : bnn.sites()) {
    posts[site.name] = std::make_shared<nd::Normal>(
        tx::full(site.slot.slot->shape(), 3.0f),
        tx::full(site.slot.slot->shape(), 0.1f));
  }
  bnn.update_prior(std::make_shared<DictPrior>(posts));
  auto* n = dynamic_cast<nd::Normal*>(bnn.sites()[0].prior.get());
  ASSERT_NE(n, nullptr);
  EXPECT_FLOAT_EQ(n->loc().at(0), 3.0f);
}

TEST(SelectiveMask, MasksLikelihoodInBnnFit) {
  // Semi-supervised: only the first half of the batch is labelled. The
  // masked fit must ignore the (wrong) labels of the unlabelled half.
  tx::manual_seed(21);
  tx::Generator gen(21);
  Tensor x = tx::randn({32, 2}, &gen);
  // True labels: sign of x0; second half gets garbage labels.
  Tensor y = tx::zeros({32});
  for (std::int64_t i = 0; i < 32; ++i) {
    const bool pos = x.at(i * 2) > 0.0f;
    y.at(i) = i < 16 ? (pos ? 1.0f : 0.0f) : (pos ? 0.0f : 1.0f);
  }
  Tensor mask = tx::zeros({32});
  for (std::int64_t i = 0; i < 16; ++i) mask.at(i) = 1.0f;

  auto net = tx::nn::make_mlp({2, 16, 2}, "tanh", &gen);
  auto bnn = std::make_shared<VariationalBNN>(
      net, std::make_shared<IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<Categorical>(16), guides::auto_delta_factory());
  auto optim = std::make_shared<tx::infer::Adam>(5e-2);
  {
    poutine::SelectiveMask sm(mask, {"likelihood.data"});
    bnn->fit({{{x}, y}}, optim, 400);
  }
  // The labelled half is fit well; the garbage labels of the masked-out half
  // were ignored, so the model disagrees with them (it predicts the true
  // sign, which the garbage labels flip).
  Tensor probs = bnn->predict(x, 1);
  Tensor labelled_probs = tx::slice(probs, 0, 0, 16);
  Tensor labelled_y = tx::slice(y, 0, 0, 16);
  EXPECT_LT(bnn->likelihood().error(labelled_probs, labelled_y).item(), 0.15);
  Tensor garbage_probs = tx::slice(probs, 0, 16, 32);
  Tensor garbage_y = tx::slice(y, 0, 16, 32);
  EXPECT_GT(bnn->likelihood().error(garbage_probs, garbage_y).item(), 0.7);
}

}  // namespace
}  // namespace tyxe
