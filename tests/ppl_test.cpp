// Tests for the effect-handler core: sample semantics, trace recording,
// replay/condition/block/scale/mask composition laws, param store.
#include <gtest/gtest.h>

#include "dist/distributions.h"
#include "ppl/ppl.h"

namespace tx::ppl {
namespace {

using dist::Normal;

dist::DistPtr std_normal(Shape shape = {}) {
  return std::make_shared<Normal>(zeros(std::move(shape)), Tensor::scalar(1.0f));
}

TEST(Sample, NoHandlersDrawsFromDistribution) {
  manual_seed(1);
  Tensor a = sample("a", std_normal({100}));
  EXPECT_EQ(a.shape(), (Shape{100}));
  Tensor b = sample("a", std_normal({100}));
  EXPECT_FALSE(allclose(a, b));  // independent draws
}

TEST(Sample, ObservedValuePassesThrough) {
  Tensor obs = Tensor::scalar(3.14f);
  Tensor v = sample("x", std_normal(), obs);
  EXPECT_FLOAT_EQ(v.item(), 3.14f);
}

TEST(Trace, RecordsSitesInOrder) {
  manual_seed(2);
  Trace tr = trace_fn([] {
    sample("w", std_normal({2}));
    sample("b", std_normal());
    sample("y", std_normal(), Tensor::scalar(1.0f));
  });
  ASSERT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.sites()[0].name, "w");
  EXPECT_EQ(tr.sites()[1].name, "b");
  EXPECT_TRUE(tr.sites()[2].is_observed);
  EXPECT_FALSE(tr.sites()[0].is_observed);
  EXPECT_TRUE(tr.contains("b"));
  EXPECT_FALSE(tr.contains("nope"));
  EXPECT_THROW(tr.at("nope"), Error);
}

TEST(Trace, DuplicateSiteThrows) {
  EXPECT_THROW(trace_fn([] {
    sample("x", std_normal());
    sample("x", std_normal());
  }),
               Error);
}

TEST(Trace, LogProbSumMatchesManual) {
  manual_seed(3);
  Trace tr = trace_fn([] {
    sample("z", std_normal({4}));
    sample("y", std_normal(), Tensor::scalar(0.5f));
  });
  Normal n(0.0f, 1.0f);
  const float expected = n.expand({4})->log_prob_sum(tr.at("z").value).item() +
                         n.log_prob(Tensor::scalar(0.5f)).item();
  EXPECT_NEAR(tr.log_prob_sum().item(), expected, 1e-4);
  const float latent_only = tr.log_prob_sum(/*observed_only=*/false).item();
  const float obs_only = tr.log_prob_sum(/*observed_only=*/true).item();
  EXPECT_NEAR(latent_only + obs_only, expected, 1e-4);
}

TEST(Replay, ForcesRecordedValues) {
  manual_seed(4);
  auto program = [] { return sample("z", std_normal({3})); };
  Trace first = trace_fn([&] { program(); });
  ReplayMessenger replay(first);
  HandlerScope scope(replay);
  Tensor replayed = program();
  EXPECT_TRUE(allclose(replayed, first.at("z").value));
}

TEST(Replay, DoesNotTouchUnknownOrObservedSites) {
  manual_seed(5);
  Trace first = trace_fn([] { sample("a", std_normal()); });
  ReplayMessenger replay(first);
  HandlerScope scope(replay);
  Tensor b1 = sample("b", std_normal({50}));
  Tensor b2 = sample("b", std_normal({50}));
  EXPECT_FALSE(allclose(b1, b2));  // unknown site still samples fresh
  Tensor obs = sample("a", std_normal(), Tensor::scalar(9.0f));
  EXPECT_FLOAT_EQ(obs.item(), 9.0f);  // observation wins over replay
}

TEST(Condition, MarksObserved) {
  ConditionMessenger cond({{"z", Tensor::scalar(2.0f)}});
  Trace tr;
  {
    HandlerScope c(cond);
    tr = trace_fn([] {
      sample("z", std_normal());
      sample("other", std_normal());
    });
  }
  EXPECT_TRUE(tr.at("z").is_observed);
  EXPECT_FLOAT_EQ(tr.at("z").value.item(), 2.0f);
  EXPECT_FALSE(tr.at("other").is_observed);
}

TEST(Scale, MultipliesLogProb) {
  manual_seed(6);
  Trace tr;
  {
    ScaleMessenger sc(10.0);
    HandlerScope s(sc);
    tr = trace_fn([] { sample("y", std_normal(), Tensor::scalar(1.0f)); });
  }
  Normal n(0.0f, 1.0f);
  EXPECT_NEAR(tr.log_prob_sum().item(),
              10.0f * n.log_prob(Tensor::scalar(1.0f)).item(), 1e-4);
  EXPECT_THROW(ScaleMessenger(-1.0), Error);
}

TEST(Scale, Composes) {
  // Nested scales multiply.
  Trace tr;
  ScaleMessenger outer(2.0), inner(3.0);
  {
    HandlerScope a(outer);
    HandlerScope b(inner);
    tr = trace_fn([] { sample("y", std_normal(), Tensor::scalar(0.0f)); });
  }
  EXPECT_NEAR(tr.at("y").scale, 6.0, 1e-9);
}

TEST(Mask, ZeroesOutElements) {
  Tensor mask(Shape{4}, {1.0f, 0.0f, 1.0f, 0.0f});
  Trace tr;
  {
    MaskMessenger mm(mask);
    HandlerScope s(mm);
    tr = trace_fn([] {
      sample("y", std_normal({4}), Tensor(Shape{4}, {1.0f, 5.0f, 1.0f, 5.0f}));
    });
  }
  Normal n(0.0f, 1.0f);
  const float expected = 2.0f * n.log_prob(Tensor::scalar(1.0f)).item();
  EXPECT_NEAR(tr.log_prob_sum().item(), expected, 1e-4);
}

TEST(Mask, SelectiveMaskOnlyTouchesExposedSites) {
  // The paper's selective_mask: mask applies to "likelihood.data" only.
  Tensor mask(Shape{2}, {0.0f, 1.0f});
  Trace tr;
  {
    MaskMessenger mm(mask, {"likelihood.data"});
    HandlerScope s(mm);
    tr = trace_fn([] {
      sample("w", std_normal({2}));
      sample("likelihood.data", std_normal({2}),
             Tensor(Shape{2}, {100.0f, 0.0f}));
    });
  }
  EXPECT_FALSE(tr.at("w").mask.defined());
  ASSERT_TRUE(tr.at("likelihood.data").mask.defined());
  // The masked-out 100.0 observation contributes nothing.
  Normal n(0.0f, 1.0f);
  const float expected = n.log_prob(Tensor::scalar(0.0f)).item();
  EXPECT_NEAR(tr.at("likelihood.data").log_prob_sum().item(), expected, 1e-4);
}

TEST(Block, HidesFromOuterHandlers) {
  manual_seed(7);
  TraceMessenger outer_trace;
  BlockMessenger block = BlockMessenger::hiding({"secret"});
  {
    HandlerScope t(outer_trace);
    HandlerScope b(block);
    sample("public", std_normal());
    sample("secret", std_normal());
  }
  EXPECT_TRUE(outer_trace.trace().contains("public"));
  EXPECT_FALSE(outer_trace.trace().contains("secret"));
}

TEST(Block, ExposingHidesEverythingElse) {
  manual_seed(8);
  TraceMessenger outer_trace;
  BlockMessenger block = BlockMessenger::exposing({"keep"});
  {
    HandlerScope t(outer_trace);
    HandlerScope b(block);
    sample("keep", std_normal());
    sample("drop1", std_normal());
    sample("drop2", std_normal());
  }
  EXPECT_EQ(outer_trace.trace().size(), 1u);
  EXPECT_TRUE(outer_trace.trace().contains("keep"));
}

TEST(Block, InnerHandlersStillSeeBlockedSites) {
  manual_seed(9);
  TraceMessenger outer_trace, inner_trace;
  BlockMessenger block = BlockMessenger::hiding({"z"});
  {
    HandlerScope t_out(outer_trace);
    HandlerScope b(block);
    HandlerScope t_in(inner_trace);
    sample("z", std_normal());
  }
  EXPECT_TRUE(inner_trace.trace().contains("z"));
  EXPECT_FALSE(outer_trace.trace().contains("z"));
}

TEST(Handlers, StackUnwindsOnScopeExit) {
  EXPECT_EQ(handler_depth(), 0u);
  {
    TraceMessenger tm;
    HandlerScope s(tm);
    EXPECT_EQ(handler_depth(), 1u);
    {
      ScaleMessenger sc(2.0);
      HandlerScope s2(sc);
      EXPECT_EQ(handler_depth(), 2u);
    }
    EXPECT_EQ(handler_depth(), 1u);
  }
  EXPECT_EQ(handler_depth(), 0u);
}

TEST(Handlers, RsampleUsedWhenGradsEnabled) {
  // A Normal whose loc requires grad should yield a sample on the graph.
  Tensor loc = Tensor::scalar(0.0f).set_requires_grad(true);
  auto d = std::make_shared<Normal>(loc, Tensor::scalar(1.0f));
  Tensor v = sample("z", d);
  EXPECT_TRUE(v.requires_grad());
  {
    NoGradGuard ng;
    Tensor v2 = sample("z", d);
    EXPECT_FALSE(v2.requires_grad());
  }
}

TEST(ParamStore, CreateGetUpdate) {
  ParamStore store;
  Tensor p = store.get_or_create("w", zeros({2}));
  EXPECT_TRUE(p.requires_grad());
  EXPECT_TRUE(store.contains("w"));
  // Second call returns the same underlying tensor.
  Tensor q = store.get_or_create("w", ones({2}));
  EXPECT_FLOAT_EQ(q.at(0), 0.0f);
  p.add_(ones({2}));
  EXPECT_FLOAT_EQ(store.get("w").at(0), 1.0f);
  EXPECT_THROW(store.get("nope"), Error);
  store.erase("w");
  EXPECT_FALSE(store.contains("w"));
}

TEST(ParamStore, LazyInitOnlyRunsOnce) {
  ParamStore store;
  int calls = 0;
  auto init = [&] {
    ++calls;
    return zeros({1});
  };
  store.get_or_create("p", init);
  store.get_or_create("p", init);
  EXPECT_EQ(calls, 1);
}

TEST(ParamStore, PrefixQuery) {
  ParamStore store;
  store.get_or_create("guide.loc.a", zeros({1}));
  store.get_or_create("guide.scale.a", zeros({1}));
  store.get_or_create("other", zeros({1}));
  EXPECT_EQ(store.items_with_prefix("guide.").size(), 2u);
  EXPECT_EQ(store.items().size(), 3u);
}

TEST(ParamStore, SnapshotRestore) {
  ParamStore store;
  Tensor p = store.get_or_create("w", full({2}, 1.0f));
  auto snap = store.snapshot();
  p.fill_(5.0f);
  EXPECT_FLOAT_EQ(store.get("w").at(0), 5.0f);
  store.restore(snap);
  EXPECT_FLOAT_EQ(store.get("w").at(0), 1.0f);
  // Restore writes through the original handle.
  EXPECT_FLOAT_EQ(p.at(0), 1.0f);
}

TEST(ParamStore, GlobalStoreAndClear) {
  clear_param_store();
  param("tmp.x", zeros({3}));
  EXPECT_TRUE(param_store().contains("tmp.x"));
  clear_param_store();
  EXPECT_EQ(param_store().size(), 0u);
}

}  // namespace
}  // namespace tx::ppl
