// Tests for the reparameterization effect handlers: output-moment agreement
// with weight sampling, gradient-variance reduction, flipout decorrelation,
// and the pass-through behaviour on deterministic weights.
#include <gtest/gtest.h>

#include <cmath>

#include "core/poutine.h"
#include "nn/nn.h"

namespace tyxe::poutine {
namespace {

namespace nd = tx::dist;
using tx::Shape;
using tx::Tensor;

/// Sample w from a registered Gaussian site and apply the functional op the
/// way a Linear layer would.
Tensor sample_weight_through(
    ReparameterizationMessenger& m, const std::shared_ptr<nd::Normal>& wd,
    const std::string& name = "w") {
  tx::ppl::HandlerScope scope(m);
  return tx::ppl::sample(name, wd);
}

TEST(LocalReparam, OutputMomentsMatchWeightSampling) {
  tx::manual_seed(1);
  auto wd = std::make_shared<nd::Normal>(tx::randn({3, 2}),
                                         tx::rand_uniform({3, 2}, 0.1f, 0.3f));
  Tensor x = tx::randn({1, 2});
  // Analytic output moments.
  Tensor mu = tx::linear(x, wd->loc(), Tensor());
  Tensor var = tx::linear(tx::square(x), tx::square(wd->scale()), Tensor());

  const int kSamples = 4000;
  double m0 = 0.0, v0 = 0.0;
  LocalReparameterizationMessenger msg;
  tx::nn::functional::push_interceptor(&msg);
  {
    tx::ppl::HandlerScope scope(msg);
    for (int i = 0; i < kSamples; ++i) {
      Tensor w = tx::ppl::sample("w" + std::to_string(i), wd);
      Tensor out = tx::nn::functional::linear(x, w, Tensor());
      m0 += out.at(0);
      v0 += out.at(0) * out.at(0);
    }
  }
  tx::nn::functional::pop_interceptor(&msg);
  m0 /= kSamples;
  v0 = v0 / kSamples - m0 * m0;
  EXPECT_NEAR(m0, mu.at(0), 0.05);
  EXPECT_NEAR(v0, var.at(0), 0.05);
}

TEST(LocalReparam, DistinctSamplesPerRow) {
  // Two identical input rows must get different outputs (per-datapoint
  // pre-activation sampling), unlike shared weight sampling.
  tx::manual_seed(2);
  auto wd = std::make_shared<nd::Normal>(tx::zeros({1, 2}), tx::ones({1, 2}));
  Tensor x = tx::ones({2, 2});
  LocalReparameterizationMessenger msg;
  tx::nn::functional::push_interceptor(&msg);
  Tensor out;
  {
    tx::ppl::HandlerScope scope(msg);
    Tensor w = tx::ppl::sample("w", wd);
    out = tx::nn::functional::linear(x, w, Tensor());
  }
  tx::nn::functional::pop_interceptor(&msg);
  EXPECT_NE(out.at(0), out.at(1));
  // Without the messenger, identical rows share the weight sample.
  Tensor w = wd->sample();
  Tensor plain = tx::nn::functional::linear(x, w, Tensor());
  EXPECT_FLOAT_EQ(plain.at(0), plain.at(1));
}

TEST(LocalReparam, DeclinesDeterministicWeights) {
  tx::manual_seed(3);
  Tensor w = tx::randn({2, 2});
  Tensor x = tx::randn({1, 2});
  LocalReparameterizationMessenger msg;
  tx::nn::functional::push_interceptor(&msg);
  Tensor out;
  {
    tx::ppl::HandlerScope scope(msg);
    out = tx::nn::functional::linear(x, w, Tensor());  // w never sampled
  }
  tx::nn::functional::pop_interceptor(&msg);
  EXPECT_TRUE(tx::allclose(out, tx::linear(x, w, Tensor())));
}

TEST(LocalReparam, SampledBiasContributesVariance) {
  tx::manual_seed(4);
  auto wd = std::make_shared<nd::Normal>(tx::zeros({1, 1}),
                                         tx::full({1, 1}, 1e-6f));
  auto bd = std::make_shared<nd::Normal>(tx::zeros({1}), tx::ones({1}));
  Tensor x = tx::zeros({1, 1});  // only the bias can produce variance
  LocalReparameterizationMessenger msg;
  tx::nn::functional::push_interceptor(&msg);
  double var = 0.0;
  const int kSamples = 4000;
  {
    tx::ppl::HandlerScope scope(msg);
    Tensor w = tx::ppl::sample("w", wd);
    Tensor b = tx::ppl::sample("b", bd);
    for (int i = 0; i < kSamples; ++i) {
      Tensor out = tx::nn::functional::linear(x, w, b);
      var += out.at(0) * out.at(0);
    }
  }
  tx::nn::functional::pop_interceptor(&msg);
  EXPECT_NEAR(var / kSamples, 1.0, 0.1);
}

TEST(LocalReparam, Conv2dMomentsMatch) {
  tx::manual_seed(5);
  auto wd = std::make_shared<nd::Normal>(
      tx::randn({2, 1, 3, 3}), tx::rand_uniform({2, 1, 3, 3}, 0.05f, 0.2f));
  Tensor x = tx::randn({1, 1, 4, 4});
  Tensor mu = tx::conv2d(x, wd->loc(), Tensor(), 1, 1);
  Tensor var = tx::conv2d(tx::square(x), tx::square(wd->scale()), Tensor(), 1, 1);
  LocalReparameterizationMessenger msg;
  tx::nn::functional::push_interceptor(&msg);
  const int kSamples = 2000;
  double m0 = 0.0, v0 = 0.0;
  {
    tx::ppl::HandlerScope scope(msg);
    for (int i = 0; i < kSamples; ++i) {
      Tensor w = tx::ppl::sample("w" + std::to_string(i), wd);
      Tensor out = tx::nn::functional::conv2d(x, w, Tensor(), 1, 1);
      m0 += out.at(5);
      v0 += out.at(5) * out.at(5);
    }
  }
  tx::nn::functional::pop_interceptor(&msg);
  m0 /= kSamples;
  v0 = v0 / kSamples - m0 * m0;
  EXPECT_NEAR(m0, mu.at(5), 0.1);
  EXPECT_NEAR(v0 / std::max(1e-6f, var.at(5)), 1.0, 0.15);
}

TEST(Flipout, OutputMomentsMatchWeightSampling) {
  tx::manual_seed(6);
  auto wd = std::make_shared<nd::Normal>(tx::randn({3, 2}),
                                         tx::rand_uniform({3, 2}, 0.1f, 0.3f));
  Tensor x = tx::randn({1, 2});
  Tensor mu = tx::linear(x, wd->loc(), Tensor());
  Tensor var = tx::linear(tx::square(x), tx::square(wd->scale()), Tensor());
  FlipoutMessenger msg;
  tx::nn::functional::push_interceptor(&msg);
  const int kSamples = 4000;
  double m0 = 0.0, v0 = 0.0;
  {
    tx::ppl::HandlerScope scope(msg);
    for (int i = 0; i < kSamples; ++i) {
      Tensor w = tx::ppl::sample("w" + std::to_string(i), wd);
      Tensor out = tx::nn::functional::linear(x, w, Tensor());
      m0 += out.at(0);
      v0 += out.at(0) * out.at(0);
    }
  }
  tx::nn::functional::pop_interceptor(&msg);
  m0 /= kSamples;
  v0 = v0 / kSamples - m0 * m0;
  EXPECT_NEAR(m0, mu.at(0), 0.05);
  EXPECT_NEAR(v0 / var.at(0), 1.0, 0.15);
}

TEST(Flipout, PerExampleDecorrelation) {
  // With flipout, two identical rows in a batch receive different
  // perturbations; correlation across rows should be far below 1.
  tx::manual_seed(7);
  auto wd = std::make_shared<nd::Normal>(tx::zeros({1, 4}), tx::ones({1, 4}));
  Tensor x = tx::ones({2, 4});
  FlipoutMessenger msg;
  tx::nn::functional::push_interceptor(&msg);
  double cov = 0.0, var = 0.0;
  const int kSamples = 2000;
  {
    tx::ppl::HandlerScope scope(msg);
    Tensor w = tx::ppl::sample("w", wd);
    for (int i = 0; i < kSamples; ++i) {
      Tensor out = tx::nn::functional::linear(x, w, Tensor());
      cov += out.at(0) * out.at(1);
      var += out.at(0) * out.at(0);
    }
  }
  tx::nn::functional::pop_interceptor(&msg);
  EXPECT_LT(std::fabs(cov / var), 0.3);
}

TEST(Flipout, Conv2dRuns) {
  tx::manual_seed(8);
  auto wd = std::make_shared<nd::Normal>(
      tx::zeros({2, 1, 3, 3}), tx::full({2, 1, 3, 3}, 0.1f));
  auto bd = std::make_shared<nd::Normal>(tx::zeros({2}), tx::full({2}, 0.1f));
  Tensor x = tx::randn({2, 1, 5, 5});
  FlipoutMessenger msg;
  tx::nn::functional::push_interceptor(&msg);
  {
    tx::ppl::HandlerScope scope(msg);
    Tensor w = tx::ppl::sample("w", wd);
    Tensor b = tx::ppl::sample("b", bd);
    Tensor out = tx::nn::functional::conv2d(x, w, b, 1, 1);
    EXPECT_EQ(out.shape(), (Shape{2, 2, 5, 5}));
  }
  tx::nn::functional::pop_interceptor(&msg);
}

TEST(ReparamScope, RaiiBalancesBothStacks) {
  EXPECT_EQ(tx::nn::functional::interceptor_depth(), 0u);
  EXPECT_EQ(tx::ppl::handler_depth(), 0u);
  {
    LocalReparameterization lr;
    EXPECT_EQ(tx::nn::functional::interceptor_depth(), 1u);
    EXPECT_EQ(tx::ppl::handler_depth(), 1u);
    {
      Flipout f;
      EXPECT_EQ(tx::nn::functional::interceptor_depth(), 2u);
    }
    EXPECT_EQ(tx::nn::functional::interceptor_depth(), 1u);
  }
  EXPECT_EQ(tx::nn::functional::interceptor_depth(), 0u);
  EXPECT_EQ(tx::ppl::handler_depth(), 0u);
}

TEST(ReparamMessenger, FirstRegistrationWins) {
  // Simulates SVI ordering: the guide registers the posterior first, then
  // the model replays the same value under the prior. The output math must
  // use the posterior's scale.
  tx::manual_seed(9);
  LocalReparameterizationMessenger msg;
  Tensor value = tx::zeros({1, 1});
  auto posterior = std::make_shared<nd::Normal>(tx::zeros({1, 1}),
                                                tx::full({1, 1}, 1e-6f));
  auto prior = std::make_shared<nd::Normal>(tx::zeros({1, 1}), tx::ones({1, 1}));
  tx::ppl::SampleMsg qmsg;
  qmsg.name = "w";
  qmsg.distribution = posterior;
  qmsg.value = value;
  msg.postprocess_message(qmsg);
  tx::ppl::SampleMsg pmsg;
  pmsg.name = "w";
  pmsg.distribution = prior;
  pmsg.value = value;  // same tensor, replayed
  msg.postprocess_message(pmsg);
  EXPECT_EQ(msg.tracked_sites(), 1u);
  // Output variance must be ~0 (posterior), not ~1 (prior).
  tx::nn::functional::push_interceptor(&msg);
  Tensor x = tx::ones({1, 1});
  double var = 0.0;
  for (int i = 0; i < 200; ++i) {
    Tensor out = tx::nn::functional::linear(x, value, Tensor());
    var += out.at(0) * out.at(0);
  }
  tx::nn::functional::pop_interceptor(&msg);
  EXPECT_LT(var / 200.0, 1e-3);
}

TEST(GradientVariance, LocalReparamReducesEstimatorVariance) {
  // The headline claim for the effect handler: the gradient of the expected
  // loss w.r.t. the variational mean has lower variance under local
  // reparameterization than under naive weight sampling. Batch of identical
  // inputs amplifies the effect.
  tx::manual_seed(10);
  Tensor loc = tx::randn({1, 8});
  Tensor log_scale = tx::full({1, 8}, -2.0f);
  Tensor x = tx::broadcast_to(tx::randn({1, 8}), {16, 8}).detach();

  auto grad_sample = [&](bool use_lr) {
    Tensor l = loc.detach().set_requires_grad(true);
    Tensor s = tx::exp(log_scale);
    auto wd = std::make_shared<nd::Normal>(l, s);
    Tensor loss;
    if (use_lr) {
      LocalReparameterization scope;
      Tensor w = tx::ppl::sample("w", wd);
      loss = tx::mean(tx::square(tx::nn::functional::linear(x, w, Tensor())));
    } else {
      Tensor w = tx::ppl::sample("w", wd);
      loss = tx::mean(tx::square(tx::nn::functional::linear(x, w, Tensor())));
    }
    loss.backward();
    return l.grad().at(0);
  };

  const int kReps = 300;
  auto variance = [&](bool use_lr) {
    double m = 0, v = 0;
    std::vector<double> g(kReps);
    for (int i = 0; i < kReps; ++i) g[i] = grad_sample(use_lr);
    for (double gi : g) m += gi;
    m /= kReps;
    for (double gi : g) v += (gi - m) * (gi - m);
    return v / kReps;
  };
  EXPECT_LT(variance(true), variance(false));
}

}  // namespace
}  // namespace tyxe::poutine
