// Unit tests for the tensor library: shapes, broadcasting, op values.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.h"

namespace tx {
namespace {

TEST(Shape, NumelAndStrides) {
  EXPECT_EQ(numel_of({2, 3, 4}), 24);
  EXPECT_EQ(numel_of({}), 1);
  EXPECT_EQ(contiguous_strides({2, 3, 4}), (Shape{12, 4, 1}));
}

TEST(Shape, Broadcasting) {
  EXPECT_TRUE(broadcastable({3, 1}, {1, 4}));
  EXPECT_FALSE(broadcastable({3, 2}, {4, 2}));
  EXPECT_EQ(broadcast_shapes({3, 1}, {4}), (Shape{3, 4}));
  EXPECT_EQ(broadcast_shapes({}, {2, 2}), (Shape{2, 2}));
  EXPECT_THROW(broadcast_shapes({3}, {4}), Error);
}

TEST(Tensor, ConstructionAndAccess) {
  Tensor t(Shape{2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(-1), 3);
  EXPECT_FLOAT_EQ(t.at(4), 1.5f);
  t.at(4) = 2.0f;
  EXPECT_FLOAT_EQ(t.at(4), 2.0f);
  EXPECT_THROW(t.item(), Error);
  EXPECT_FLOAT_EQ(Tensor::scalar(3.0f).item(), 3.0f);
}

TEST(Tensor, HandleSemantics) {
  Tensor a(Shape{2}, {1.0f, 2.0f});
  Tensor b = a;  // aliases
  b.at(0) = 5.0f;
  EXPECT_FLOAT_EQ(a.at(0), 5.0f);
  Tensor c = a.detach();  // copies
  c.at(0) = 9.0f;
  EXPECT_FLOAT_EQ(a.at(0), 5.0f);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1.0f}), Error);
}

TEST(Factories, Basic) {
  EXPECT_FLOAT_EQ(zeros({3}).at(1), 0.0f);
  EXPECT_FLOAT_EQ(ones({3}).at(1), 1.0f);
  EXPECT_FLOAT_EQ(full({2}, 7.0f).at(0), 7.0f);
  EXPECT_FLOAT_EQ(arange(5).at(3), 3.0f);
  Tensor ls = linspace(0.0f, 1.0f, 5);
  EXPECT_FLOAT_EQ(ls.at(2), 0.5f);
  Tensor id = eye(3);
  EXPECT_FLOAT_EQ(id.at(4), 1.0f);
  EXPECT_FLOAT_EQ(id.at(1), 0.0f);
}

TEST(Factories, RandomReproducible) {
  Generator g1(42), g2(42);
  Tensor a = randn({16}, &g1);
  Tensor b = randn({16}, &g2);
  EXPECT_TRUE(allclose(a, b));
  Tensor s = rand_sign({100}, &g1);
  for (std::int64_t i = 0; i < s.numel(); ++i) {
    EXPECT_TRUE(s.at(i) == 1.0f || s.at(i) == -1.0f);
  }
}

TEST(Elementwise, AddBroadcast) {
  Tensor a(Shape{2, 1}, {1.0f, 2.0f});
  Tensor b(Shape{3}, {10.0f, 20.0f, 30.0f});
  Tensor c = a + b;
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(c.at(0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(5), 32.0f);
}

TEST(Elementwise, ScalarOperators) {
  Tensor a(Shape{2}, {2.0f, 4.0f});
  EXPECT_FLOAT_EQ((a * 2.0f).at(1), 8.0f);
  EXPECT_FLOAT_EQ((1.0f / a).at(0), 0.5f);
  EXPECT_FLOAT_EQ((a - 1.0f).at(0), 1.0f);
  EXPECT_FLOAT_EQ((-a).at(1), -4.0f);
}

TEST(Elementwise, UnaryValues) {
  Tensor x(Shape{3}, {-1.0f, 0.0f, 2.0f});
  EXPECT_FLOAT_EQ(relu(x).at(0), 0.0f);
  EXPECT_FLOAT_EQ(relu(x).at(2), 2.0f);
  EXPECT_NEAR(exp(x).at(2), std::exp(2.0f), 1e-5);
  EXPECT_NEAR(tanh(x).at(0), std::tanh(-1.0f), 1e-6);
  EXPECT_NEAR(sigmoid(x).at(1), 0.5f, 1e-6);
  EXPECT_NEAR(softplus(Tensor::scalar(0.0f)).item(), std::log(2.0f), 1e-6);
  EXPECT_NEAR(softplus(Tensor::scalar(30.0f)).item(), 30.0f, 1e-4);
  EXPECT_NEAR(erf(Tensor::scalar(0.5f)).item(), std::erf(0.5f), 1e-6);
  EXPECT_FLOAT_EQ(abs(x).at(0), 1.0f);
  EXPECT_FLOAT_EQ(square(x).at(2), 4.0f);
}

TEST(Elementwise, ClampAndExtremes) {
  Tensor x(Shape{4}, {-2.0f, 0.5f, 1.5f, 3.0f});
  Tensor c = clamp(x, 0.0f, 2.0f);
  EXPECT_FLOAT_EQ(c.at(0), 0.0f);
  EXPECT_FLOAT_EQ(c.at(1), 0.5f);
  EXPECT_FLOAT_EQ(c.at(3), 2.0f);
  EXPECT_FLOAT_EQ(clamp_max(x, 1.0f).at(3), 1.0f);
  EXPECT_FLOAT_EQ(clamp_min(x, 0.0f).at(0), 0.0f);
  Tensor a(Shape{2}, {1.0f, 5.0f});
  Tensor b(Shape{2}, {3.0f, 2.0f});
  EXPECT_FLOAT_EQ(maximum(a, b).at(0), 3.0f);
  EXPECT_FLOAT_EQ(minimum(a, b).at(1), 2.0f);
}

TEST(Reduce, SumMean) {
  Tensor x(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(sum(x).item(), 21.0f);
  EXPECT_FLOAT_EQ(mean(x).item(), 3.5f);
  Tensor s0 = sum(x, {0});
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0.at(0), 5.0f);
  Tensor s1 = sum(x, {1}, /*keepdim=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s1.at(1), 15.0f);
  Tensor m = mean(x, {0, 1});
  EXPECT_FLOAT_EQ(m.item(), 3.5f);
}

TEST(Reduce, MaxMinArgmax) {
  Tensor x(Shape{2, 3}, {1, 9, 3, 7, 5, 6});
  Tensor mx = max(x, 1);
  EXPECT_EQ(mx.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(mx.at(0), 9.0f);
  EXPECT_FLOAT_EQ(mx.at(1), 7.0f);
  EXPECT_FLOAT_EQ(min(x, 1).at(0), 1.0f);
  Tensor am = argmax(x, 1);
  EXPECT_FLOAT_EQ(am.at(0), 1.0f);
  EXPECT_FLOAT_EQ(am.at(1), 0.0f);
}

TEST(Reduce, LogSumExpStable) {
  Tensor x(Shape{1, 2}, {1000.0f, 1000.0f});
  Tensor lse = logsumexp(x, 1);
  EXPECT_NEAR(lse.item(), 1000.0f + std::log(2.0f), 1e-3);
}

TEST(Reduce, SoftmaxNormalizes) {
  Tensor x(Shape{2, 4}, {1, 2, 3, 4, -1, 0, 1, 2});
  Tensor p = softmax(x, -1);
  for (std::int64_t r = 0; r < 2; ++r) {
    float s = 0.0f;
    for (std::int64_t c = 0; c < 4; ++c) s += p.at(r * 4 + c);
    EXPECT_NEAR(s, 1.0f, 1e-5);
  }
  Tensor lp = log_softmax(x, -1);
  EXPECT_NEAR(lp.at(3), std::log(p.at(3)), 1e-5);
}

TEST(Reduce, Cumsum) {
  Tensor x(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor c1 = cumsum(x, 1);
  EXPECT_FLOAT_EQ(c1.at(2), 6.0f);
  EXPECT_FLOAT_EQ(c1.at(5), 15.0f);
  Tensor c0 = cumsum(x, 0);
  EXPECT_FLOAT_EQ(c0.at(3), 5.0f);
}

TEST(ShapeOps, ReshapeWildcard) {
  Tensor x(Shape{2, 6}, 1.0f);
  Tensor r = reshape(x, {3, -1});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  EXPECT_THROW(reshape(x, {5, -1}), Error);
  EXPECT_EQ(x.flatten().shape(), (Shape{12}));
  EXPECT_EQ(x.flatten(1).shape(), (Shape{2, 6}));
}

TEST(ShapeOps, PermuteTranspose) {
  Tensor x(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = transpose(x, 0, 1);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at(1), 4.0f);  // t[0][1] == x[1][0]
  Tensor y(Shape{2, 3, 4}, 0.0f);
  EXPECT_EQ(permute(y, {2, 0, 1}).shape(), (Shape{4, 2, 3}));
}

TEST(ShapeOps, BroadcastToSumTo) {
  Tensor x(Shape{1, 3}, {1, 2, 3});
  Tensor b = broadcast_to(x, {2, 3});
  EXPECT_FLOAT_EQ(b.at(5), 3.0f);
  Tensor s = sum_to(b, {1, 3});
  EXPECT_FLOAT_EQ(s.at(0), 2.0f);
  Tensor full_sum = sum_to(b, {});
  EXPECT_FLOAT_EQ(full_sum.item(), 12.0f);
}

TEST(ShapeOps, CatStackSlice) {
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b(Shape{1, 2}, {5, 6});
  Tensor c = cat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(c.at(4), 5.0f);
  Tensor s = stack({a, a}, 0);
  EXPECT_EQ(s.shape(), (Shape{2, 2, 2}));
  Tensor sl = slice(c, 0, 1, 3);
  EXPECT_EQ(sl.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(sl.at(0), 3.0f);
  Tensor cols = cat({a, a}, 1);
  EXPECT_EQ(cols.shape(), (Shape{2, 4}));
  EXPECT_FLOAT_EQ(cols.at(2), 1.0f);
}

TEST(ShapeOps, IndexSelectGatherOneHot) {
  Tensor a(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor sel = index_select(a, 0, {2, 0, 2});
  EXPECT_EQ(sel.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(sel.at(0), 5.0f);
  EXPECT_FLOAT_EQ(sel.at(2), 1.0f);
  Tensor idx(Shape{3}, {1.0f, 0.0f, 1.0f});
  Tensor g = gather_last(a, idx);
  EXPECT_EQ(g.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(g.at(0), 2.0f);
  EXPECT_FLOAT_EQ(g.at(1), 3.0f);
  Tensor oh = one_hot(idx, 2);
  EXPECT_EQ(oh.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(oh.at(1), 1.0f);
  EXPECT_FLOAT_EQ(oh.at(0), 0.0f);
}

TEST(Linalg, MatmulValues) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.at(0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(3), 154.0f);
  EXPECT_THROW(matmul(a, a), Error);
}

TEST(Linalg, BmmValues) {
  Tensor a(Shape{2, 1, 2}, {1, 2, 3, 4});
  Tensor b(Shape{2, 2, 1}, {5, 6, 7, 8});
  Tensor c = bmm(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 1, 1}));
  EXPECT_FLOAT_EQ(c.at(0), 17.0f);
  EXPECT_FLOAT_EQ(c.at(1), 53.0f);
}

TEST(Linalg, LinearMatchesManual) {
  Tensor x(Shape{2, 3}, {1, 0, -1, 2, 1, 0});
  Tensor w(Shape{2, 3}, {1, 1, 1, 0, 1, 0});
  Tensor b(Shape{2}, {0.5f, -0.5f});
  Tensor y = linear(x, w, b);
  EXPECT_EQ(y.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(y.at(0), 0.5f);   // 1+0-1 + 0.5
  EXPECT_FLOAT_EQ(y.at(1), -0.5f);  // 0 + -0.5
  EXPECT_FLOAT_EQ(y.at(2), 3.5f);   // 3 + 0.5
  // 3-D input: leading dims preserved.
  Tensor x3(Shape{2, 2, 3}, 1.0f);
  EXPECT_EQ(linear(x3, w, b).shape(), (Shape{2, 2, 2}));
}

TEST(Conv, IdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input channel.
  Tensor x(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w(Shape{1, 1, 1, 1}, {1.0f});
  Tensor y = conv2d(x, w, Tensor());
  EXPECT_TRUE(allclose(y, x));
}

TEST(Conv, KnownValues) {
  // 2x2 all-ones kernel sums each 2x2 patch.
  Tensor x(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w(Shape{1, 1, 2, 2}, {1, 1, 1, 1});
  Tensor y = conv2d(x, w, Tensor());
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0), 12.0f);
  EXPECT_FLOAT_EQ(y.at(3), 28.0f);
  // Padding grows the output.
  Tensor yp = conv2d(x, w, Tensor(), /*stride=*/1, /*padding=*/1);
  EXPECT_EQ(yp.shape(), (Shape{1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(yp.at(0), 1.0f);
  // Stride skips positions.
  Tensor ys = conv2d(x, w, Tensor(), /*stride=*/2, /*padding=*/1);
  EXPECT_EQ(ys.shape(), (Shape{1, 1, 2, 2}));
}

TEST(Conv, BiasBroadcasts) {
  Tensor x(Shape{2, 1, 2, 2}, 0.0f);
  Tensor w(Shape{3, 1, 1, 1}, {1, 1, 1});
  Tensor b(Shape{3}, {1.0f, 2.0f, 3.0f});
  Tensor y = conv2d(x, w, b);
  EXPECT_FLOAT_EQ(y.at(0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(4), 2.0f);
  EXPECT_FLOAT_EQ(y.at(11), 3.0f);
}

TEST(Pool, MaxAndAvg) {
  Tensor x(Shape{1, 1, 4, 4},
           {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  Tensor mp = max_pool2d(x, 2, 2);
  EXPECT_EQ(mp.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(mp.at(0), 6.0f);
  EXPECT_FLOAT_EQ(mp.at(3), 16.0f);
  Tensor ap = avg_pool2d(x, 2, 2);
  EXPECT_FLOAT_EQ(ap.at(0), 3.5f);
  EXPECT_FLOAT_EQ(ap.at(3), 13.5f);
}

TEST(Misc, AllClose) {
  Tensor a(Shape{2}, {1.0f, 2.0f});
  Tensor b(Shape{2}, {1.0f, 2.000001f});
  EXPECT_TRUE(allclose(a, b));
  EXPECT_FALSE(allclose(a, Tensor(Shape{2}, {1.0f, 3.0f})));
  EXPECT_FALSE(allclose(a, Tensor(Shape{1, 2}, {1.0f, 2.0f})));
}

TEST(Misc, ToString) {
  Tensor a(Shape{2}, {1.0f, 2.0f});
  EXPECT_NE(to_string(a).find("1"), std::string::npos);
  EXPECT_EQ(to_string(Tensor()), "Tensor(undefined)");
}

}  // namespace
}  // namespace tx
