// Inference tests: optimizers on quadratics, ELBO correctness, SVI posterior
// recovery on conjugate models, autoguide options, HMC/NUTS sampling
// accuracy, chain diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/distributions.h"
#include "infer/infer.h"

namespace tx::infer {
namespace {

using dist::Normal;

TEST(Optim, SgdMinimizesQuadratic) {
  Tensor x = Tensor::scalar(5.0f).set_requires_grad(true);
  SGD opt(0.1);
  opt.add_param(x);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    square(x - 3.0f).backward();
    opt.step();
  }
  EXPECT_NEAR(x.item(), 3.0f, 1e-3);
}

TEST(Optim, SgdMomentumConverges) {
  Tensor x = Tensor::scalar(5.0f).set_requires_grad(true);
  SGD opt(0.02, 0.9);
  opt.add_param(x);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    square(x).backward();
    opt.step();
  }
  EXPECT_NEAR(x.item(), 0.0f, 1e-3);
}

TEST(Optim, AdamMinimizesIllConditioned) {
  Tensor x = Tensor(Shape{2}, {5.0f, -5.0f}).set_requires_grad(true);
  Adam opt(0.1);
  opt.add_param(x);
  Tensor scale(Shape{2}, {100.0f, 1.0f});
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    sum(mul(scale, square(x))).backward();
    opt.step();
  }
  EXPECT_NEAR(x.at(0), 0.0f, 1e-2);
  EXPECT_NEAR(x.at(1), 0.0f, 1e-2);
}

TEST(Optim, ClippedAdamClipsAndDecays) {
  Tensor x = Tensor::scalar(1.0f).set_requires_grad(true);
  ClippedAdam opt(0.1, /*clip=*/1.0, /*lrd=*/0.5);
  opt.add_param(x);
  opt.zero_grad();
  mul(x, Tensor::scalar(1e6f)).backward();  // huge gradient
  opt.step();
  EXPECT_GT(x.item(), 0.85f);  // clipped update is about lr in magnitude
  EXPECT_NEAR(opt.lr(), 0.05, 1e-9);
}

TEST(Optim, AddParamDeduplicatesAndValidates) {
  Tensor x = Tensor::scalar(0.0f).set_requires_grad(true);
  SGD opt(0.1);
  opt.add_param(x);
  opt.add_param(x);
  EXPECT_EQ(opt.num_params(), 1u);
  Tensor y = x * 2.0f;
  EXPECT_THROW(opt.add_param(y), Error);
}

TEST(Optim, AdamStateSurvivesHandleReplacementByName) {
  // Regression: Adam moments used to be keyed by the raw TensorImpl*, so a
  // ParamStore::set()/restore() that swapped the handle silently reset the
  // optimizer state. Keyed by name, the moments must survive a rebind.
  Adam opt(0.1);
  Tensor x = Tensor::scalar(5.0f).set_requires_grad(true);
  opt.add_param("x", x);
  for (int i = 0; i < 3; ++i) {
    opt.zero_grad();
    square(x - 3.0f).backward();
    opt.step();
  }
  // Replace the handle mid-optimization, exactly what restore() does.
  Tensor x2 = Tensor::scalar(x.item()).set_requires_grad(true);
  opt.add_param("x", x2);
  EXPECT_EQ(opt.num_params(), 1u);
  opt.zero_grad();
  square(x2 - 3.0f).backward();
  opt.step();

  // Uninterrupted reference: same 4 steps with no handle swap.
  Adam ref(0.1);
  Tensor y = Tensor::scalar(5.0f).set_requires_grad(true);
  ref.add_param("y", y);
  for (int i = 0; i < 4; ++i) {
    ref.zero_grad();
    square(y - 3.0f).backward();
    ref.step();
  }
  EXPECT_EQ(x2.item(), y.item());  // bitwise: t, m, v all carried over
}

TEST(Optim, StepLRDecaysOnSchedule) {
  SGD opt(1.0);
  StepLR sched(opt, 10, 0.1);
  for (int i = 0; i < 10; ++i) sched.step();
  EXPECT_NEAR(opt.lr(), 0.1, 1e-9);
  for (int i = 0; i < 10; ++i) sched.step();
  EXPECT_NEAR(opt.lr(), 0.01, 1e-9);
}

// Conjugate Normal-Normal model: z ~ N(0, 1); x_i ~ N(z, sigma) observed.
// Posterior: N(n*xbar/(n + sigma^2), sigma^2/(n + sigma^2))... with unit
// prior variance: var = 1/(1 + n/sigma^2), mean = var * sum(x)/sigma^2.
struct ConjugateModel {
  Tensor data;
  float sigma;
  void operator()() const {
    Tensor z = ppl::sample("z", std::make_shared<Normal>(0.0f, 1.0f));
    ppl::sample("x",
                std::make_shared<Normal>(broadcast_to(z, data.shape()),
                                         full(data.shape(), sigma)),
                data);
  }
  float posterior_mean() const {
    const float n = static_cast<float>(data.numel());
    float s = 0.0f;
    for (std::int64_t i = 0; i < data.numel(); ++i) s += data.at(i);
    const float prec = 1.0f + n / (sigma * sigma);
    return (s / (sigma * sigma)) / prec;
  }
  float posterior_std() const {
    const float n = static_cast<float>(data.numel());
    return 1.0f / std::sqrt(1.0f + n / (sigma * sigma));
  }
};

ConjugateModel make_conjugate() {
  Tensor data(Shape{10}, {1.2f, 0.8f, 1.1f, 0.9f, 1.3f, 1.0f, 0.7f, 1.4f, 1.05f, 0.95f});
  return ConjugateModel{data, 0.5f};
}

TEST(SVI, RecoversConjugatePosteriorTraceELBO) {
  manual_seed(100);
  ppl::ParamStore store;
  auto model = make_conjugate();
  auto guide = std::make_shared<AutoNormal>([model] { model(); },
                                            AutoNormalConfig{}, "g", &store);
  SVI svi([model] { model(); }, [guide] { (*guide)(); },
          std::make_shared<ClippedAdam>(0.05, 10.0, 0.998),
          std::make_shared<TraceELBO>(1), &store);
  for (int i = 0; i < 2500; ++i) svi.step();
  auto q = guide->site_distribution("z");
  EXPECT_NEAR(q->loc().item(), model.posterior_mean(), 0.05);
  EXPECT_NEAR(q->scale().item(), model.posterior_std(), 0.05);
}

TEST(SVI, RecoversConjugatePosteriorMeanFieldELBO) {
  manual_seed(101);
  ppl::ParamStore store;
  auto model = make_conjugate();
  auto guide = std::make_shared<AutoNormal>([model] { model(); },
                                            AutoNormalConfig{}, "g", &store);
  SVI svi([model] { model(); }, [guide] { (*guide)(); },
          std::make_shared<ClippedAdam>(0.05, 10.0, 0.998),
          std::make_shared<TraceMeanFieldELBO>(1), &store);
  for (int i = 0; i < 2500; ++i) svi.step();
  auto q = guide->site_distribution("z");
  EXPECT_NEAR(q->loc().item(), model.posterior_mean(), 0.05);
  EXPECT_NEAR(q->scale().item(), model.posterior_std(), 0.05);
}

TEST(SVI, MeanFieldELBOHasLowerVarianceAtOptimum) {
  // At a fixed guide, the analytic-KL estimator's loss should vary less
  // across evaluations than the sampled estimator.
  manual_seed(102);
  ppl::ParamStore store;
  auto model = make_conjugate();
  auto guide = std::make_shared<AutoNormal>([model] { model(); },
                                            AutoNormalConfig{}, "g", &store);
  Program m = [model] { model(); };
  Program g = [guide] { (*guide)(); };
  // Touch the guide once to create params.
  TraceELBO sampled;
  TraceMeanFieldELBO analytic;
  auto variance_of = [&](ELBO& e) {
    std::vector<double> losses;
    for (int i = 0; i < 40; ++i) {
      losses.push_back(e.differentiable_loss(m, g).item());
    }
    double mean = 0;
    for (double l : losses) mean += l;
    mean /= static_cast<double>(losses.size());
    double var = 0;
    for (double l : losses) var += (l - mean) * (l - mean);
    return var / static_cast<double>(losses.size());
  };
  EXPECT_LT(variance_of(analytic), variance_of(sampled));
}

TEST(SVI, AutoDeltaFindsPosteriorModeMAP) {
  manual_seed(103);
  ppl::ParamStore store;
  auto model = make_conjugate();
  auto guide = std::make_shared<AutoDelta>([model] { model(); }, nullptr, "g",
                                           &store);
  SVI svi([model] { model(); }, [guide] { (*guide)(); },
          std::make_shared<Adam>(0.05), std::make_shared<TraceELBO>(1), &store);
  for (int i = 0; i < 800; ++i) svi.step();
  // For a Gaussian posterior the MAP equals the posterior mean.
  EXPECT_NEAR(store.get("g.loc.z").item(), model.posterior_mean(), 0.03);
}

TEST(SVI, LossDecreases) {
  manual_seed(104);
  ppl::ParamStore store;
  auto model = make_conjugate();
  auto guide = std::make_shared<AutoNormal>([model] { model(); },
                                            AutoNormalConfig{}, "g", &store);
  SVI svi([model] { model(); }, [guide] { (*guide)(); },
          std::make_shared<Adam>(0.05), std::make_shared<TraceMeanFieldELBO>(1),
          &store);
  double first_avg = 0, last_avg = 0;
  for (int i = 0; i < 50; ++i) first_avg += svi.step();
  for (int i = 0; i < 900; ++i) svi.step();
  for (int i = 0; i < 50; ++i) last_avg += svi.step();
  EXPECT_LT(last_avg, first_avg);
}

TEST(AutoNormal, MaxScaleClipsPosterior) {
  manual_seed(105);
  ppl::ParamStore store;
  // Model with a very diffuse posterior (no data): posterior == prior N(0,1),
  // so the unclipped scale would approach 1.
  Program model = [] { ppl::sample("z", std::make_shared<Normal>(0.0f, 1.0f)); };
  AutoNormalConfig cfg;
  cfg.max_scale = 0.1f;
  auto guide = std::make_shared<AutoNormal>(model, cfg, "g", &store);
  SVI svi(model, [guide] { (*guide)(); }, std::make_shared<Adam>(0.05),
          std::make_shared<TraceELBO>(1), &store);
  for (int i = 0; i < 300; ++i) svi.step();
  EXPECT_LE(guide->site_distribution("z")->scale().item(), 0.1f + 1e-5f);
}

TEST(AutoNormal, TrainLocFalseFreezesMeans) {
  manual_seed(106);
  ppl::ParamStore store;
  auto model = make_conjugate();
  AutoNormalConfig cfg;
  cfg.train_loc = false;
  cfg.init_loc = init_to_value({{"z", Tensor::scalar(0.25f)}});
  auto guide = std::make_shared<AutoNormal>([model] { model(); }, cfg, "g",
                                            &store);
  SVI svi([model] { model(); }, [guide] { (*guide)(); },
          std::make_shared<Adam>(0.05), std::make_shared<TraceELBO>(1), &store);
  for (int i = 0; i < 200; ++i) svi.step();
  // The mean never moves from its init; the scale still adapts.
  EXPECT_FLOAT_EQ(store.get("g.loc.z").item(), 0.25f);
  EXPECT_NE(guide->site_distribution("z")->scale().item(), 0.1f);
}

TEST(AutoNormal, InitToValueAndMedian) {
  ppl::ParamStore store;
  Program model = [] {
    ppl::sample("w", std::make_shared<Normal>(full({3}, 2.0f), ones({3})));
  };
  AutoNormalConfig cfg;
  cfg.init_loc = init_to_median();
  AutoNormal guide(model, cfg, "g", &store);
  guide();
  EXPECT_TRUE(allclose(store.get("g.loc.w"), full({3}, 2.0f)));

  ppl::ParamStore store2;
  AutoNormalConfig cfg2;
  cfg2.init_loc = init_to_value({{"w", Tensor(Shape{3}, {1.0f, 2.0f, 3.0f})}});
  AutoNormal guide2(model, cfg2, "g", &store2);
  guide2();
  EXPECT_FLOAT_EQ(store2.get("g.loc.w").at(2), 3.0f);
}

TEST(AutoNormal, DetachedDistributionsForVCL) {
  manual_seed(107);
  ppl::ParamStore store;
  Program model = [] { ppl::sample("z", std::make_shared<Normal>(0.0f, 1.0f)); };
  AutoNormal guide(model, AutoNormalConfig{}, "g", &store);
  guide();
  auto dists = guide.get_detached_distributions({"z"});
  ASSERT_EQ(dists.size(), 1u);
  auto* n = dynamic_cast<Normal*>(dists.at("z").get());
  ASSERT_NE(n, nullptr);
  EXPECT_FALSE(n->loc().requires_grad());
  EXPECT_FALSE(n->scale().requires_grad());
}

TEST(AutoLowRank, RecoverCorrelatedPosterior) {
  // Two latents observed only through their sum: the posterior is strongly
  // (negatively) correlated, which a full mean-field guide cannot represent
  // but the low-rank guide can.
  manual_seed(108);
  ppl::ParamStore store;
  Program model = [] {
    Tensor a = ppl::sample("a", std::make_shared<Normal>(0.0f, 1.0f));
    Tensor b = ppl::sample("b", std::make_shared<Normal>(0.0f, 1.0f));
    ppl::sample("obs", std::make_shared<Normal>(add(a, b), Tensor::scalar(0.1f)),
                Tensor::scalar(1.0f));
  };
  auto guide = std::make_shared<AutoLowRankMultivariateNormal>(model, 2, 0.1f,
                                                               nullptr, "g",
                                                               &store);
  SVI svi(model, [guide] { (*guide)(); }, std::make_shared<Adam>(0.02),
          std::make_shared<TraceELBO>(1), &store);
  for (int i = 0; i < 2000; ++i) svi.step();
  // Posterior mean of a + b should be close to 1 (tight likelihood).
  Tensor loc = store.get("g._loc");
  EXPECT_NEAR(loc.at(0) + loc.at(1), 1.0f, 0.1f);
  // Draws should exhibit negative correlation between a and b.
  auto dists = guide->get_detached_distributions({"a", "b"});
  EXPECT_EQ(dists.size(), 2u);
  double cov = 0.0, n_samples = 300;
  manual_seed(109);
  for (int i = 0; i < n_samples; ++i) {
    ppl::Trace tr = ppl::trace_fn([guide] { (*guide)(); });
    const float a = tr.at("a").value.item() - loc.at(0);
    const float b = tr.at("b").value.item() - loc.at(1);
    cov += a * b;
  }
  EXPECT_LT(cov / n_samples, -1e-4);
}

TEST(HMC, SamplesStandardNormal) {
  manual_seed(110);
  Generator gen(110);
  Program model = [] { ppl::sample("z", std::make_shared<Normal>(0.0f, 1.0f)); };
  auto kernel = std::make_shared<HMC>(0.2, 10);
  MCMC mcmc(kernel, /*num_samples=*/600, /*warmup=*/200);
  mcmc.run(model, &gen);
  auto chain = mcmc.coordinate_chain(0);
  double m = 0, v = 0;
  for (double x : chain) m += x;
  m /= static_cast<double>(chain.size());
  for (double x : chain) v += (x - m) * (x - m);
  v /= static_cast<double>(chain.size());
  EXPECT_NEAR(m, 0.0, 0.15);
  EXPECT_NEAR(v, 1.0, 0.25);
  EXPECT_GT(mcmc.mean_accept_prob(), 0.5);
}

TEST(HMC, EnergyConservationAtSmallStep) {
  // With a tiny step size, acceptance should be near 1 (energy conserved).
  manual_seed(111);
  Generator gen(111);
  Program model = [] {
    ppl::sample("z", std::make_shared<Normal>(zeros({4}), ones({4})));
  };
  auto kernel = std::make_shared<HMC>(0.01, 5, /*adapt=*/false);
  MCMC mcmc(kernel, 50, 0);
  mcmc.run(model, &gen);
  EXPECT_GT(mcmc.mean_accept_prob(), 0.99);
}

TEST(HMC, RecoverConjugatePosterior) {
  manual_seed(112);
  Generator gen(112);
  auto model = make_conjugate();
  auto kernel = std::make_shared<HMC>(0.1, 15);
  MCMC mcmc(kernel, 800, 300);
  mcmc.run([model] { model(); }, &gen);
  auto chain = mcmc.coordinate_chain(0);
  double m = 0;
  for (double x : chain) m += x;
  m /= static_cast<double>(chain.size());
  EXPECT_NEAR(m, model.posterior_mean(), 0.05);
  double v = 0;
  for (double x : chain) v += (x - m) * (x - m);
  v /= static_cast<double>(chain.size());
  EXPECT_NEAR(std::sqrt(v), model.posterior_std(), 0.05);
}

TEST(NUTS, SamplesCorrelatedGaussian) {
  manual_seed(113);
  Generator gen(113);
  // Funnel-free correlated target via the sum-observation model.
  Program model = [] {
    Tensor a = ppl::sample("a", std::make_shared<Normal>(0.0f, 1.0f));
    Tensor b = ppl::sample("b", std::make_shared<Normal>(0.0f, 1.0f));
    ppl::sample("obs", std::make_shared<Normal>(add(a, b), Tensor::scalar(0.2f)),
                Tensor::scalar(2.0f));
  };
  auto kernel = std::make_shared<NUTS>(0.1, 6);
  MCMC mcmc(kernel, 500, 300);
  mcmc.run(model, &gen);
  auto a = mcmc.coordinate_chain(0);
  auto b = mcmc.coordinate_chain(1);
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(a.size());
  mb /= static_cast<double>(a.size());
  EXPECT_NEAR(ma + mb, 2.0, 0.15);
  EXPECT_GT(mcmc.mean_accept_prob(), 0.6);
  // Negative posterior correlation between a and b.
  double cov = 0;
  for (std::size_t i = 0; i < a.size(); ++i) cov += (a[i] - ma) * (b[i] - mb);
  EXPECT_LT(cov / static_cast<double>(a.size()), 0.0);
}

TEST(MCMC, SiteAccessors) {
  manual_seed(114);
  Generator gen(114);
  Program model = [] {
    ppl::sample("w", std::make_shared<Normal>(zeros({2, 2}), ones({2, 2})));
  };
  auto kernel = std::make_shared<HMC>(0.2, 5);
  MCMC mcmc(kernel, 10, 10);
  mcmc.run(model, &gen);
  auto samples = mcmc.get_samples("w");
  EXPECT_EQ(samples.size(), 10u);
  EXPECT_EQ(samples[0].shape(), (Shape{2, 2}));
  EXPECT_THROW(mcmc.get_samples("nope"), Error);
  auto one = mcmc.sample_at(3);
  EXPECT_TRUE(one.count("w"));
}

TEST(Diagnostics, IidChainHasHighESSAndUnitRhat) {
  Generator gen(115);
  std::vector<double> chain(1000);
  for (auto& x : chain) x = gen.normal();
  EXPECT_GT(effective_sample_size(chain), 500.0);
  EXPECT_NEAR(split_r_hat(chain), 1.0, 0.05);
}

TEST(Diagnostics, StickyChainHasLowESS) {
  Generator gen(116);
  std::vector<double> chain(1000);
  double x = 0.0;
  for (auto& v : chain) {
    x = 0.99 * x + 0.1 * gen.normal();  // strongly autocorrelated
    v = x;
  }
  EXPECT_LT(effective_sample_size(chain), 200.0);
}

TEST(Diagnostics, DriftingChainHasHighRhat) {
  std::vector<double> chain(1000);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    chain[i] = static_cast<double>(i) * 0.01;  // deterministic drift
  }
  EXPECT_GT(split_r_hat(chain), 1.5);
}

TEST(Diagnostics, ConstantChainIsDefined) {
  // Zero variance: ESS falls back to the chain length and split-R̂ to 1
  // (within-chain variance is 0, the convention Gelman et al. adopt).
  const std::vector<double> chain(64, 3.25);
  EXPECT_DOUBLE_EQ(effective_sample_size(chain), 64.0);
  EXPECT_DOUBLE_EQ(split_r_hat(chain), 1.0);
}

TEST(Diagnostics, ShortChainsReturnNaN) {
  // The documented contract: inputs too short for the estimator yield NaN —
  // no throw, no fabricated number — so incremental callers can probe
  // unconditionally and skip non-finite results.
  const std::vector<double> three{1.0, 2.0, 3.0};
  EXPECT_TRUE(std::isnan(effective_sample_size(three)));
  EXPECT_TRUE(std::isnan(effective_sample_size(std::vector<double>{})));
  const std::vector<double> seven{1, 2, 3, 4, 5, 6, 7};
  EXPECT_TRUE(std::isnan(split_r_hat(seven)));
  // The shortest admissible inputs work.
  const std::vector<double> four{1.0, 2.0, 1.5, 2.5};
  EXPECT_GT(effective_sample_size(four), 0.0);
  const std::vector<double> eight{1, 2, 1, 2, 1, 2, 1, 2};
  EXPECT_GE(split_r_hat(eight), 0.0);
}

TEST(Diagnostics, MultiChainDegenerateInputsReturnNaN) {
  using Chains = std::vector<std::vector<double>>;
  const Chains empty;
  EXPECT_TRUE(std::isnan(effective_sample_size(empty)));
  EXPECT_TRUE(std::isnan(split_r_hat(empty)));

  // Ragged chains: the estimators require rectangular input.
  Generator gen(118);
  Chains ragged(2);
  for (int i = 0; i < 32; ++i) ragged[0].push_back(gen.normal());
  for (int i = 0; i < 16; ++i) ragged[1].push_back(gen.normal());
  EXPECT_TRUE(std::isnan(effective_sample_size(ragged)));
  EXPECT_TRUE(std::isnan(split_r_hat(ragged)));

  // Rectangular but below the single-chain minimum length.
  const Chains short_chains(3, std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_TRUE(std::isnan(effective_sample_size(short_chains)));
  EXPECT_TRUE(std::isnan(split_r_hat(short_chains)));

  // A healthy rectangular pair still produces finite estimates.
  Chains ok(2);
  for (int i = 0; i < 64; ++i) {
    ok[0].push_back(gen.normal());
    ok[1].push_back(gen.normal());
  }
  EXPECT_TRUE(std::isfinite(effective_sample_size(ok)));
  EXPECT_NEAR(split_r_hat(ok), 1.0, 0.1);
}

TEST(Diagnostics, Ar1ChainMatchesAnalyticEss) {
  // An AR(1) chain x_t = phi x_{t-1} + e_t has autocorrelation rho_k =
  // phi^k, so ESS/n -> (1 - phi) / (1 + phi). With phi = 0.5 that is 1/3.
  constexpr double kPhi = 0.5;
  constexpr std::size_t kN = 20000;
  Generator gen(119);
  std::vector<double> chain(kN);
  double x = 0.0;
  // Burn in so the chain starts from (near) stationarity.
  for (int i = 0; i < 100; ++i) x = kPhi * x + gen.normal();
  for (auto& v : chain) {
    x = kPhi * x + gen.normal();
    v = x;
  }
  const double expected =
      static_cast<double>(kN) * (1.0 - kPhi) / (1.0 + kPhi);
  const double ess = effective_sample_size(chain);
  EXPECT_NEAR(ess / expected, 1.0, 0.15);
}

TEST(Diagnostics, EssNeverExceedsChainLength) {
  Generator gen(117);
  // iid, sticky, drifting and anti-correlated chains all respect ESS <= n.
  std::vector<std::vector<double>> chains(4, std::vector<double>(256));
  double x = 0.0;
  for (std::size_t i = 0; i < 256; ++i) {
    chains[0][i] = gen.normal();
    x = 0.9 * x + gen.normal();
    chains[1][i] = x;
    chains[2][i] = static_cast<double>(i);
    chains[3][i] = (i % 2 == 0) ? gen.normal() : -chains[3][i - 1];
  }
  for (const auto& chain : chains) {
    EXPECT_LE(effective_sample_size(chain),
              static_cast<double>(chain.size()) + 1e-9);
  }
}

TEST(SVI, SeededGeneratorMakesRunsReproducible) {
  auto run_losses = [](std::uint64_t seed) {
    manual_seed(7);  // pin the global stream so only `gen` distinguishes runs
    Generator gen(seed);
    ppl::ParamStore store;
    auto model = make_conjugate();
    auto guide = std::make_shared<AutoNormal>([model] { model(); },
                                              AutoNormalConfig{}, "g", &store);
    SVI svi([model] { model(); }, [guide] { (*guide)(); },
            std::make_shared<Adam>(0.05), std::make_shared<TraceELBO>(1),
            &store, &gen);
    std::vector<double> losses;
    for (int i = 0; i < 20; ++i) losses.push_back(svi.step());
    losses.push_back(svi.evaluate_loss());
    return losses;
  };
  // Same seed: bit-for-bit identical loss trajectory, including the
  // no-update evaluate_loss() at the end. Different seed: diverges.
  const auto a = run_losses(42), b = run_losses(42), c = run_losses(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(MCMC, EmitsProgressAndDivergenceCounters) {
  Generator gen(118);
  auto model = make_conjugate();
  MCMC mcmc(std::make_shared<HMC>(0.1, 5), /*num_samples=*/20,
            /*warmup_steps=*/10);
  std::vector<MCMCProgress> seen;
  mcmc.run([model] { model(); }, &gen,
           [&](const MCMCProgress& p) { seen.push_back(p); });
  ASSERT_EQ(seen.size(), 30u);
  EXPECT_TRUE(seen.front().warmup);
  EXPECT_FALSE(seen.back().warmup);
  EXPECT_EQ(seen.back().step, 19);
  EXPECT_EQ(seen.back().total, 20);
  EXPECT_GT(seen.back().mean_accept_prob, 0.0);
  EXPECT_GE(seen.back().divergences, 0);
  EXPECT_EQ(mcmc.divergence_count(), seen.back().divergences);
}

}  // namespace
}  // namespace tx::infer
