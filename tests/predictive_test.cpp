// Tests for the Predictive utility and HMC diagonal mass-matrix adaptation.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/distributions.h"
#include "infer/infer.h"

namespace tx::infer {
namespace {

using dist::Normal;

TEST(Predictive, CollectsRequestedSitesStacked) {
  manual_seed(70);
  ppl::ParamStore store;
  Program model = [] {
    Tensor z = ppl::sample("z", std::make_shared<Normal>(0.0f, 1.0f));
    ppl::sample("y", std::make_shared<Normal>(z, Tensor::scalar(0.1f)));
  };
  auto guide = std::make_shared<AutoNormal>(model, AutoNormalConfig{}, "g",
                                            &store);
  Predictive predictive(model, [guide] { (*guide)(); }, 16, {"y"});
  auto out = predictive();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.at("y").dim(0), 16);
  // Unknown sites are rejected.
  Predictive bad(model, [guide] { (*guide)(); }, 2, {"nope"});
  EXPECT_THROW(bad(), Error);
}

TEST(Predictive, DefaultCollectsEverySite) {
  manual_seed(71);
  ppl::ParamStore store;
  Program model = [] {
    Tensor z = ppl::sample("z", std::make_shared<Normal>(zeros({3}), ones({3})));
    ppl::sample("obs", std::make_shared<Normal>(z, full({3}, 0.5f)),
                Tensor(Shape{3}, {1.0f, 2.0f, 3.0f}));
  };
  auto guide = std::make_shared<AutoNormal>(model, AutoNormalConfig{}, "g",
                                            &store);
  Predictive predictive(model, [guide] { (*guide)(); }, 4);
  auto out = predictive();
  EXPECT_TRUE(out.count("z"));
  EXPECT_TRUE(out.count("obs"));
  EXPECT_EQ(out.at("z").shape(), (Shape{4, 3}));
  // Observed values are constant across samples.
  EXPECT_TRUE(allclose(slice(out.at("obs"), 0, 0, 1),
                       slice(out.at("obs"), 0, 3, 4)));
  // Latent draws come from the (replayed) guide, so they vary.
  EXPECT_FALSE(allclose(slice(out.at("z"), 0, 0, 1),
                        slice(out.at("z"), 0, 3, 4)));
}

TEST(Predictive, MatchesGuidePosteriorMoments) {
  // With a trained guide, the predictive latent mean matches the guide loc.
  manual_seed(72);
  ppl::ParamStore store;
  Program model = [] {
    Tensor z = ppl::sample("z", std::make_shared<Normal>(0.0f, 1.0f));
    ppl::sample("x", std::make_shared<Normal>(z, Tensor::scalar(0.2f)),
                Tensor::scalar(1.0f));
  };
  auto guide = std::make_shared<AutoNormal>(model, AutoNormalConfig{}, "g",
                                            &store);
  SVI svi(model, [guide] { (*guide)(); },
          std::make_shared<ClippedAdam>(0.05, 10.0, 0.998),
          std::make_shared<TraceMeanFieldELBO>(), &store);
  for (int i = 0; i < 1200; ++i) svi.step();
  Predictive predictive(model, [guide] { (*guide)(); }, 512, {"z"});
  Tensor zs = predictive().at("z");
  double m = 0;
  for (std::int64_t i = 0; i < zs.numel(); ++i) m += zs.at(i);
  m /= static_cast<double>(zs.numel());
  EXPECT_NEAR(m, guide->site_distribution("z")->loc().item(), 0.05);
}

TEST(MassAdaptation, EstimatesScaleSeparatedPosterior) {
  // Target: independent Gaussians with stds 0.1 and 10 — terribly
  // conditioned for identity-mass HMC. The adapted inverse mass should
  // reflect the variance ratio.
  manual_seed(73);
  Generator gen(73);
  Program model = [] {
    ppl::sample("a", std::make_shared<Normal>(0.0f, 0.1f));
    ppl::sample("b", std::make_shared<Normal>(0.0f, 10.0f));
  };
  auto kernel = std::make_shared<HMC>(0.05, 10, /*adapt_step_size=*/true, 0.8,
                                      /*adapt_mass_matrix=*/true);
  MCMC mcmc(kernel, /*num_samples=*/400, /*warmup=*/400);
  mcmc.run(model, &gen);
  const auto& inv_mass = kernel->inverse_mass();
  ASSERT_EQ(inv_mass.size(), 2u);
  // Inverse mass approximates the marginal variances (0.01 vs 100): at
  // least two orders of magnitude apart.
  EXPECT_GT(inv_mass[1] / inv_mass[0], 100.0);
  // And the chain explores the wide dimension decently.
  auto b = mcmc.coordinate_chain(1);
  double mb = 0, vb = 0;
  for (double x : b) mb += x;
  mb /= static_cast<double>(b.size());
  for (double x : b) vb += (x - mb) * (x - mb);
  vb /= static_cast<double>(b.size());
  EXPECT_GT(std::sqrt(vb), 3.0);  // identity-mass HMC with eps~0.05 cannot
}

TEST(MassAdaptation, OffByDefaultKeepsIdentity) {
  manual_seed(74);
  Generator gen(74);
  Program model = [] { ppl::sample("z", std::make_shared<Normal>(0.0f, 1.0f)); };
  auto kernel = std::make_shared<HMC>(0.2, 5);
  MCMC mcmc(kernel, 20, 60);
  mcmc.run(model, &gen);
  EXPECT_TRUE(kernel->inverse_mass().empty());
}

}  // namespace
}  // namespace tx::infer
