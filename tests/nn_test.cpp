// Tests for the module system and layers: registry behaviour (the property
// priors depend on), layer math, training/eval modes, ResNet shapes, and the
// functional interceptor stack.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/nn.h"
#include "tensor/grad_check.h"

namespace tx::nn {
namespace {

TEST(Module, NamedParameterSlotsArePaths) {
  Generator gen(1);
  auto net = make_mlp({1, 4, 1}, "tanh", &gen);
  auto slots = net->named_parameter_slots();
  ASSERT_EQ(slots.size(), 4u);  // two Linear layers x (weight, bias)
  EXPECT_EQ(slots[0].name, "0.weight");
  EXPECT_EQ(slots[0].local_name, "weight");
  EXPECT_EQ(slots[1].name, "0.bias");
  EXPECT_EQ(slots[2].name, "2.weight");  // activation at index 1 has no params
  EXPECT_EQ(slots[3].name, "2.bias");
}

TEST(Module, SlotSwapChangesForward) {
  // The central TyXe-enabling property: writing through a slot changes what
  // the unchanged forward code computes.
  Generator gen(2);
  Linear lin(2, 1, /*bias=*/false, &gen);
  Tensor x(Shape{1, 2}, {1.0f, 1.0f});
  auto slots = lin.named_parameter_slots();
  *slots[0].slot = Tensor(Shape{1, 2}, {2.0f, 3.0f});
  EXPECT_FLOAT_EQ(lin.forward(x).item(), 5.0f);
  *slots[0].slot = Tensor(Shape{1, 2}, {-1.0f, 1.0f});
  EXPECT_FLOAT_EQ(lin.forward(x).item(), 0.0f);
}

TEST(Module, NamedModulesAndTypeNames) {
  Generator gen(3);
  auto net = make_mlp({2, 3, 2}, "relu", &gen);
  auto mods = net->named_modules();
  ASSERT_EQ(mods.size(), 4u);  // Sequential + Linear + ReLU + Linear
  EXPECT_EQ(mods[0].second->type_name(), "Sequential");
  EXPECT_EQ(mods[1].first, "0");
  EXPECT_EQ(mods[1].second->type_name(), "Linear");
  EXPECT_EQ(mods[2].second->type_name(), "ReLU");
}

TEST(Module, StateDictRoundTrip) {
  Generator gen(4);
  auto a = make_mlp({2, 4, 1}, "relu", &gen);
  auto b = make_mlp({2, 4, 1}, "relu", &gen);
  Tensor x = randn({3, 2}, &gen);
  EXPECT_FALSE(allclose(a->forward(x), b->forward(x)));
  b->load_state_dict(a->state_dict());
  EXPECT_TRUE(allclose(a->forward(x), b->forward(x)));
}

TEST(Module, LoadStateDictValidates) {
  Generator gen(5);
  auto net = make_mlp({2, 2}, "relu", &gen);
  EXPECT_THROW(net->load_state_dict({{"nope", zeros({1})}}), Error);
  EXPECT_THROW(net->load_state_dict({{"0.weight", zeros({3, 3})}}), Error);
}

TEST(Module, NumParameters) {
  Generator gen(6);
  auto net = make_mlp({10, 20, 5}, "relu", &gen);
  EXPECT_EQ(net->num_parameters(), 10 * 20 + 20 + 20 * 5 + 5);
}

TEST(Module, DuplicateRegistrationThrows) {
  struct Bad : UnaryModule {
    Tensor a = ones({1}), b = ones({1});
    Bad() {
      a.set_requires_grad(true);
      b.set_requires_grad(true);
      register_parameter("w", &a);
    }
    void register_again() { register_parameter("w", &b); }
    std::string type_name() const override { return "Bad"; }
    Tensor forward_one(const Tensor& x) override { return x; }
  };
  Bad bad;
  EXPECT_THROW(bad.register_again(), Error);
}

TEST(Linear, MatchesFunctional) {
  Generator gen(7);
  Linear lin(3, 2, true, &gen);
  Tensor x = randn({4, 3}, &gen);
  Tensor expected = linear(x, lin.weight(), lin.bias());
  EXPECT_TRUE(allclose(lin.forward(x), expected));
}

TEST(Linear, GradientsFlowToParameters) {
  Generator gen(8);
  Linear lin(3, 2, true, &gen);
  Tensor x = randn({4, 3}, &gen);
  sum(square(lin.forward(x))).backward();
  EXPECT_TRUE(lin.weight().has_grad());
  EXPECT_TRUE(lin.bias().has_grad());
}

TEST(Conv2d, ShapeAndNoBias) {
  Generator gen(9);
  Conv2d conv(3, 8, 3, 2, 1, /*bias=*/false, &gen);
  Tensor x = randn({2, 3, 8, 8}, &gen);
  EXPECT_EQ(conv.forward(x).shape(), (Shape{2, 8, 4, 4}));
  EXPECT_EQ(conv.named_parameter_slots().size(), 1u);
}

TEST(BatchNorm, NormalizesInTraining) {
  Generator gen(10);
  BatchNorm2d bn(4);
  Tensor x = add(mul(randn({8, 4, 5, 5}, &gen), Tensor::scalar(3.0f)),
                 Tensor::scalar(7.0f));
  Tensor y = bn.forward(x);
  Tensor m = mean(y, {0, 2, 3});
  Tensor v = mean(square(sub(y, mean(y, {0, 2, 3}, true))), {0, 2, 3});
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(m.at(c), 0.0f, 1e-4);
    EXPECT_NEAR(v.at(c), 1.0f, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Generator gen(11);
  BatchNorm2d bn(2);
  Tensor x = add(randn({16, 2, 4, 4}, &gen), Tensor::scalar(5.0f));
  for (int i = 0; i < 50; ++i) bn.forward(x);  // converge running stats
  bn.eval();
  Tensor y = bn.forward(x);
  Tensor m = mean(y, {0, 2, 3});
  EXPECT_NEAR(m.at(0), 0.0f, 0.1f);
  // Eval mode must not depend on the batch: a single sample is normalized
  // with the same statistics.
  Tensor one = slice(x, 0, 0, 1);
  Tensor y1 = bn.forward(one);
  EXPECT_TRUE(allclose(y1, slice(y, 0, 0, 1), 1e-4f));
}

TEST(Dropout, TrainVsEval) {
  Generator gen(12);
  Dropout drop(0.5f, &gen);
  Tensor x = ones({1000});
  Tensor y = drop.forward(x);
  std::int64_t zeros_count = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y.at(i) == 0.0f) ++zeros_count;
  }
  EXPECT_GT(zeros_count, 350);
  EXPECT_LT(zeros_count, 650);
  drop.eval();
  EXPECT_TRUE(allclose(drop.forward(x), x));
}

TEST(Sequential, ChainsAndPropagatesTrainMode) {
  Generator gen(13);
  auto seq = std::make_shared<Sequential>();
  seq->append(std::make_shared<Linear>(2, 2, true, &gen));
  seq->append(std::make_shared<ReLU>());
  EXPECT_EQ(seq->size(), 2u);
  seq->eval();
  EXPECT_FALSE(seq->at(0).is_training());
  seq->train();
  EXPECT_TRUE(seq->at(0).is_training());
}

TEST(MLP, ActivationsAndErrors) {
  Generator gen(14);
  EXPECT_NO_THROW(make_mlp({1, 2, 1}, "tanh", &gen));
  EXPECT_NO_THROW(make_mlp({1, 2, 1}, "sigmoid", &gen));
  EXPECT_NO_THROW(make_mlp({1, 2, 1}, "softplus", &gen));
  EXPECT_THROW(make_mlp({1, 2, 1}, "gelu", &gen), Error);
  EXPECT_THROW(make_mlp({1}, "relu", &gen), Error);
}

TEST(Init, FanCalculations) {
  EXPECT_EQ(init::fan_in_out({8, 4}), (std::pair<std::int64_t, std::int64_t>{4, 8}));
  EXPECT_EQ(init::fan_in_out({16, 3, 3, 3}),
            (std::pair<std::int64_t, std::int64_t>{27, 144}));
  EXPECT_NEAR(init::init_std("radford", {8, 4}), 0.5f, 1e-6);
  EXPECT_NEAR(init::init_std("kaiming", {8, 2}), 1.0f, 1e-6);
  EXPECT_NEAR(init::init_std("xavier", {6, 2}), 0.5f, 1e-6);
  EXPECT_THROW(init::init_std("bogus", {2, 2}), Error);
}

TEST(Init, FillsHaveRequestedMoments) {
  Generator gen(15);
  Tensor t = zeros({200, 50});
  init::normal_(t, 1.0f, 0.5f, &gen);
  double m = 0, v = 0;
  for (std::int64_t i = 0; i < t.numel(); ++i) m += t.at(i);
  m /= static_cast<double>(t.numel());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    v += (t.at(i) - m) * (t.at(i) - m);
  }
  v /= static_cast<double>(t.numel());
  EXPECT_NEAR(m, 1.0, 0.02);
  EXPECT_NEAR(std::sqrt(v), 0.5, 0.02);
}

TEST(ResNet, OutputShapesAndBlocks) {
  Generator gen(16);
  auto net = make_resnet8(10, 8, 3, &gen);
  Tensor x = randn({2, 3, 16, 16}, &gen);
  EXPECT_EQ(net->forward(x).shape(), (Shape{2, 10}));
  // Has BatchNorm modules that the Table-1 prior hides.
  int bn_count = 0;
  for (auto& [name, m] : net->named_modules()) {
    if (m->type_name() == "BatchNorm2d") ++bn_count;
  }
  EXPECT_GT(bn_count, 4);
  // Deeper/wider variant.
  ResNet deep({2, 2, 2}, 8, 10, 3, &gen);
  EXPECT_EQ(deep.forward(x).shape(), (Shape{2, 10}));
}

TEST(ResNet, GradientReachesStem) {
  Generator gen(17);
  auto net = make_resnet8(4, 4, 3, &gen);
  Tensor x = randn({2, 3, 8, 8}, &gen);
  sum(square(net->forward(x))).backward();
  auto slots = net->named_parameter_slots();
  EXPECT_EQ(slots[0].name, "conv1.weight");
  EXPECT_TRUE(slots[0].slot->has_grad());
  EXPECT_TRUE(slots.back().slot->has_grad());  // fc.bias
}

// A test interceptor that scales every linear output by a constant.
class ScalingInterceptor : public functional::LinearOpInterceptor {
 public:
  explicit ScalingInterceptor(float s) : s_(s) {}
  Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b) override {
    return mul(tx::linear(x, w, b), Tensor::scalar(s_));
  }
  Tensor conv2d(const Tensor&, const Tensor&, const Tensor&, std::int64_t,
                std::int64_t) override {
    return Tensor();  // decline: conv falls through to the base op
  }

 private:
  float s_;
};

TEST(Functional, InterceptorOverridesAndRestores) {
  Generator gen(18);
  Linear lin(2, 2, true, &gen);
  Tensor x = randn({1, 2}, &gen);
  Tensor plain = lin.forward(x);
  {
    ScalingInterceptor sc(2.0f);
    functional::push_interceptor(&sc);
    EXPECT_EQ(functional::interceptor_depth(), 1u);
    EXPECT_TRUE(allclose(lin.forward(x), mul(plain, Tensor::scalar(2.0f))));
    functional::pop_interceptor(&sc);
  }
  EXPECT_EQ(functional::interceptor_depth(), 0u);
  EXPECT_TRUE(allclose(lin.forward(x), plain));
}

TEST(Functional, InterceptorsNestLifo) {
  Generator gen(19);
  Linear lin(2, 1, false, &gen);
  Tensor x = ones({1, 2});
  Tensor plain = lin.forward(x);
  ScalingInterceptor outer(2.0f), inner(3.0f);
  functional::push_interceptor(&outer);
  functional::push_interceptor(&inner);
  // Innermost wins; it does not chain (first defined result returns).
  EXPECT_TRUE(allclose(lin.forward(x), mul(plain, Tensor::scalar(3.0f))));
  functional::pop_interceptor(&inner);
  EXPECT_TRUE(allclose(lin.forward(x), mul(plain, Tensor::scalar(2.0f))));
  functional::pop_interceptor(&outer);
  // Unbalanced pops throw.
  EXPECT_THROW(functional::pop_interceptor(&outer), Error);
}

TEST(Functional, DecliningInterceptorFallsThrough) {
  Generator gen(20);
  Conv2d conv(1, 1, 3, 1, 1, false, &gen);
  Tensor x = randn({1, 1, 4, 4}, &gen);
  Tensor plain = conv.forward(x);
  ScalingInterceptor sc(5.0f);  // declines conv2d
  functional::push_interceptor(&sc);
  EXPECT_TRUE(allclose(conv.forward(x), plain));
  functional::pop_interceptor(&sc);
}

}  // namespace
}  // namespace tx::nn
