// Tests for the synthetic dataset generators and the DataLoader.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/datasets.h"

namespace tx::data {
namespace {

TEST(Regression, FoongClustersAndTargets) {
  Generator gen(1);
  auto data = make_foong_regression(100, gen);
  EXPECT_EQ(data.x.shape(), (Shape{100, 1}));
  EXPECT_EQ(data.y.shape(), (Shape{100, 1}));
  for (std::int64_t i = 0; i < 100; ++i) {
    const float x = data.x.at(i);
    EXPECT_TRUE((x >= -1.0f && x <= -0.7f) || (x >= 0.5f && x <= 1.0f)) << x;
    // Target within a few noise-sigmas of the clean function.
    EXPECT_NEAR(data.y.at(i), std::cos(4.0f * x + 0.8f), 0.5f);
  }
}

TEST(Images, PatternDatasetShapesAndLabels) {
  Generator gen(2);
  SyntheticImageConfig cfg;
  cfg.num_classes = 4;
  cfg.per_class = 8;
  cfg.size = 8;
  auto ds = make_pattern_images(cfg, gen);
  EXPECT_EQ(ds.images.shape(), (Shape{32, 3, 8, 8}));
  EXPECT_EQ(ds.labels.shape(), (Shape{32}));
  EXPECT_EQ(ds.num_classes, 4);
  std::vector<int> counts(4, 0);
  for (std::int64_t i = 0; i < 32; ++i) {
    counts[static_cast<std::size_t>(std::llround(ds.labels.at(i)))]++;
  }
  for (int c : counts) EXPECT_EQ(c, 8);
}

TEST(Images, SamePatternSeedIsLearnableAcrossSplits) {
  // Train/test generated independently share class patterns: the nearest
  // class-mean classifier on train means must beat chance on test.
  Generator gen(3);
  SyntheticImageConfig cfg;
  cfg.num_classes = 4;
  cfg.per_class = 24;
  cfg.size = 8;
  cfg.noise = 0.3f;
  auto train = make_pattern_images(cfg, gen);
  auto test = make_pattern_images(cfg, gen);
  const std::int64_t pixels = 3 * 8 * 8;
  // Class means from train.
  std::vector<std::vector<double>> means(
      4, std::vector<double>(static_cast<std::size_t>(pixels), 0.0));
  std::vector<int> counts(4, 0);
  for (std::int64_t i = 0; i < train.labels.numel(); ++i) {
    const auto c = static_cast<std::size_t>(std::llround(train.labels.at(i)));
    counts[c]++;
    for (std::int64_t p = 0; p < pixels; ++p) {
      means[c][static_cast<std::size_t>(p)] += train.images.at(i * pixels + p);
    }
  }
  for (std::size_t c = 0; c < 4; ++c) {
    for (auto& v : means[c]) v /= counts[c];
  }
  // Nearest-mean classification on test.
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < test.labels.numel(); ++i) {
    double best = 1e30;
    std::size_t pick = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      double d = 0.0;
      for (std::int64_t p = 0; p < pixels; ++p) {
        const double diff = test.images.at(i * pixels + p) -
                            means[c][static_cast<std::size_t>(p)];
        d += diff * diff;
      }
      if (d < best) {
        best = d;
        pick = c;
      }
    }
    if (pick == static_cast<std::size_t>(std::llround(test.labels.at(i)))) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) /
                static_cast<double>(test.labels.numel()),
            0.9);
}

TEST(Images, DifferentPatternSeedChangesPatterns) {
  Generator gen(4);
  SyntheticImageConfig a, b;
  a.per_class = 1;
  a.noise = 0.0f;
  b = a;
  b.pattern_seed = a.pattern_seed + 1;
  auto da = make_pattern_images(a, gen);
  auto db = make_pattern_images(b, gen);
  EXPECT_FALSE(allclose(da.images, db.images, 1e-2f));
}

TEST(Images, OodSetHasDifferentStatistics) {
  Generator gen(5);
  SyntheticImageConfig cfg;
  cfg.num_classes = 2;
  cfg.per_class = 16;
  cfg.size = 8;
  auto id_set = make_pattern_images(cfg, gen);
  auto ood = make_ood_images(32, 3, 8, gen);
  EXPECT_EQ(ood.images.shape(), (Shape{32, 3, 8, 8}));
  // OOD checker textures have much higher local contrast: compare mean
  // absolute horizontal gradient.
  auto mean_abs_grad = [](const Tensor& images) {
    double total = 0.0;
    std::int64_t count = 0;
    const auto& s = images.shape();
    for (std::int64_t i = 0; i < s[0]; ++i) {
      for (std::int64_t c = 0; c < s[1]; ++c) {
        for (std::int64_t y = 0; y < s[2]; ++y) {
          for (std::int64_t x = 0; x + 1 < s[3]; ++x) {
            const std::int64_t base = ((i * s[1] + c) * s[2] + y) * s[3] + x;
            total += std::fabs(images.at(base + 1) - images.at(base));
            ++count;
          }
        }
      }
    }
    return total / static_cast<double>(count);
  };
  EXPECT_GT(mean_abs_grad(ood.images), 1.5 * mean_abs_grad(id_set.images));
}

TEST(SplitTasks, DisjointClassesRelabelled) {
  Generator gen(6);
  SyntheticImageConfig cfg;
  cfg.num_classes = 10;
  cfg.size = 8;
  auto tasks = make_split_tasks(cfg, 5, 8, 4, gen);
  ASSERT_EQ(tasks.size(), 5u);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(tasks[t].class_a, static_cast<std::int64_t>(2 * t));
    EXPECT_EQ(tasks[t].class_b, static_cast<std::int64_t>(2 * t + 1));
    EXPECT_EQ(tasks[t].train.labels.numel(), 16);
    EXPECT_EQ(tasks[t].test.labels.numel(), 8);
    for (std::int64_t i = 0; i < tasks[t].train.labels.numel(); ++i) {
      const float y = tasks[t].train.labels.at(i);
      EXPECT_TRUE(y == 0.0f || y == 1.0f);
    }
  }
  EXPECT_THROW(make_split_tasks(cfg, 6, 4, 4, gen), Error);
}

TEST(Loader, BatchesPartitionDataset) {
  Generator gen(7);
  Tensor x = randn({10, 3}, &gen);
  Tensor y = arange(10);
  DataLoader loader(x, y, 4, /*shuffle=*/false);
  EXPECT_EQ(loader.num_batches(), 3);
  auto batches = loader.batches();
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].first[0].shape(), (Shape{4, 3}));
  EXPECT_EQ(batches[2].first[0].shape(), (Shape{2, 3}));  // remainder
  // Unshuffled: targets stay in order.
  EXPECT_FLOAT_EQ(batches[0].second.at(0), 0.0f);
  EXPECT_FLOAT_EQ(batches[2].second.at(1), 9.0f);
}

TEST(Loader, ShuffleCoversAllExamplesOnce) {
  Generator gen(8);
  Tensor x = randn({9, 2}, &gen);
  Tensor y = arange(9);
  DataLoader loader(x, y, 2, /*shuffle=*/true);
  auto batches = loader.batches(&gen);
  std::set<std::int64_t> seen;
  for (const auto& [inputs, targets] : batches) {
    for (std::int64_t i = 0; i < targets.numel(); ++i) {
      EXPECT_TRUE(seen.insert(static_cast<std::int64_t>(targets.at(i))).second);
    }
  }
  EXPECT_EQ(seen.size(), 9u);
}

TEST(Loader, Validation) {
  Tensor x = zeros({4, 2});
  EXPECT_THROW(DataLoader(x, zeros({3}), 2), Error);
  EXPECT_THROW(DataLoader(x, zeros({4}), 0), Error);
}

}  // namespace
}  // namespace tx::data
