// End-to-end coverage of the less-common likelihoods and priors through the
// full BNN API: heteroskedastic regression, Bernoulli classification,
// Poisson counts, layerwise and scale-mixture priors, and multi-particle
// ELBO estimation.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/tyxe.h"

namespace {

namespace nd = tx::dist;
using tx::Shape;
using tx::Tensor;

TEST(HeteroskedasticBnn, LearnsInputDependentNoise) {
  // y ~ N(0, sigma(x)) with sigma = 0.05 for x < 0 and 0.5 for x > 0: the
  // heteroskedastic likelihood should recover the noise asymmetry.
  tx::manual_seed(60);
  tx::Generator gen(60);
  const std::int64_t n = 128;
  Tensor x = tx::linspace(-1.0f, 1.0f, n).reshape({n, 1});
  Tensor y = tx::zeros({n, 1});
  for (std::int64_t i = 0; i < n; ++i) {
    const float sigma = x.at(i) < 0.0f ? 0.05f : 0.5f;
    y.at(i) = static_cast<float>(gen.normal(0.0, sigma));
  }
  auto net = tx::nn::make_mlp({1, 16, 2}, "tanh", &gen);  // [mean | raw scale]
  auto lik = std::make_shared<tyxe::HeteroskedasticGaussian>(n);
  // A MAP guide keeps the focus of this test on the likelihood plumbing
  // rather than variational-noise convergence.
  tyxe::VariationalBNN bnn(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      lik, tyxe::guides::auto_delta_factory());
  auto optim = std::make_shared<tx::infer::Adam>(2e-2);
  bnn.fit({{{x}, y}}, optim, 800);
  Tensor agg = bnn.predict(x, 4);
  auto [mean, scale] = tyxe::HeteroskedasticGaussian::split(agg);
  // Predicted noise on the right half should be clearly larger.
  double left = 0.0, right = 0.0;
  for (std::int64_t i = 0; i < n / 2; ++i) left += scale.at(i);
  for (std::int64_t i = n / 2; i < n; ++i) right += scale.at(i);
  EXPECT_GT(right / left, 2.0);
  // And the mean should stay near zero everywhere.
  EXPECT_LT(tx::mean(tx::square(mean)).item(), 0.05f);
}

TEST(BernoulliBnn, BinaryClassificationAboveChance) {
  tx::manual_seed(61);
  tx::Generator gen(61);
  const std::int64_t n = 64;
  Tensor x = tx::randn({n, 2}, &gen);
  Tensor y = tx::zeros({n});
  for (std::int64_t i = 0; i < n; ++i) {
    y.at(i) = (x.at(i * 2) + x.at(i * 2 + 1)) > 0.0f ? 1.0f : 0.0f;
  }
  auto net = tx::nn::make_mlp({2, 8, 1}, "tanh", &gen);
  tyxe::VariationalBNN bnn(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::Bernoulli>(n), tyxe::guides::auto_normal_factory());
  auto optim = std::make_shared<tx::infer::Adam>(2e-2);
  bnn.fit({{{x}, tx::reshape(y, {n, 1})}}, optim, 300);
  Tensor probs = bnn.predict(x, 8);
  EXPECT_LT(bnn.likelihood().error(probs, tx::reshape(y, {n, 1})).item(), 0.15);
  auto [ll, err] = bnn.evaluate({x}, tx::reshape(y, {n, 1}), 8);
  EXPECT_GT(ll, static_cast<double>(n) * std::log(0.5));  // beats coin flip
}

TEST(PoissonBnn, CountRegressionRecoversRate) {
  // Counts with rate depending on x: rate = exp-ish via softplus link.
  tx::manual_seed(62);
  tx::Generator gen(62);
  const std::int64_t n = 96;
  Tensor x = tx::linspace(-1.0f, 1.0f, n).reshape({n, 1});
  Tensor y = tx::zeros({n, 1});
  for (std::int64_t i = 0; i < n; ++i) {
    const double rate = 1.0 + 4.0 * (x.at(i) + 1.0) / 2.0;  // 1 .. 5
    std::poisson_distribution<long> d(rate);
    y.at(i) = static_cast<float>(d(gen.engine()));
  }
  auto net = tx::nn::make_mlp({1, 8, 1}, "tanh", &gen);
  tyxe::VariationalBNN bnn(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::Poisson>(n), tyxe::guides::auto_normal_factory());
  auto optim = std::make_shared<tx::infer::Adam>(2e-2);
  bnn.fit({{{x}, y}}, optim, 400);
  Tensor rates = bnn.predict(x, 16);  // aggregated rates
  // Rate should increase from left to right and bracket the truth loosely.
  double left = 0.0, right = 0.0;
  for (std::int64_t i = 0; i < n / 4; ++i) left += rates.at(i);
  for (std::int64_t i = 3 * n / 4; i < n; ++i) right += rates.at(i);
  left /= static_cast<double>(n / 4);
  right /= static_cast<double>(n / 4);
  EXPECT_GT(right, left + 1.0);
  EXPECT_NEAR(left, 1.5, 1.2);
  EXPECT_NEAR(right, 4.5, 1.5);
}

TEST(LayerwisePriorBnn, FitsRegression) {
  tx::manual_seed(63);
  tx::Generator gen(63);
  Tensor x = tx::linspace(-1.0f, 1.0f, 32).reshape({32, 1});
  Tensor y = tx::sin(tx::mul(x, Tensor::scalar(3.0f))).detach();
  auto net = tx::nn::make_mlp({1, 16, 1}, "tanh", &gen);
  tyxe::VariationalBNN bnn(
      net, std::make_shared<tyxe::LayerwiseNormalPrior>("radford"),
      std::make_shared<tyxe::HomoskedasticGaussian>(32, 0.1f),
      tyxe::guides::auto_normal_factory());
  // Prior scales follow the fan-in rule per site.
  for (const auto& site : bnn.sites()) {
    auto* normal = dynamic_cast<nd::Normal*>(site.prior.get());
    ASSERT_NE(normal, nullptr);
    const float expected =
        tx::nn::init::init_std("radford", site.slot.slot->shape());
    EXPECT_NEAR(normal->scale().at(0), expected, 1e-6) << site.name;
  }
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  bnn.fit({{{x}, y}}, optim, 300);
  auto [ll, err] = bnn.evaluate({x}, y, 8);
  EXPECT_LT(err, 0.1);
}

TEST(ScaleMixturePriorBnn, McKlFallbackTrains) {
  // The spike-and-slab prior has no analytic KL against the Normal guide:
  // this exercises the TraceELBO sampled-KL path end to end.
  tx::manual_seed(64);
  tx::Generator gen(64);
  Tensor x = tx::linspace(-1.0f, 1.0f, 32).reshape({32, 1});
  Tensor y = tx::mul(x, x).detach();
  auto net = tx::nn::make_mlp({1, 12, 1}, "tanh", &gen);
  auto prior = std::make_shared<tyxe::IIDPrior>(
      std::make_shared<nd::ScaleMixtureNormal>(Shape{}, 0.5f, 1.0f, 0.01f));
  tyxe::VariationalBNN bnn(net, prior,
                           std::make_shared<tyxe::HomoskedasticGaussian>(32, 0.1f),
                           tyxe::guides::auto_normal_factory());
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  auto [ll0, err0] = bnn.evaluate({x}, y, 8);
  bnn.fit({{{x}, y}}, optim, 300);
  auto [ll1, err1] = bnn.evaluate({x}, y, 8);
  EXPECT_LT(err1, err0);
  EXPECT_LT(err1, 0.1);
}

TEST(MultiParticleElbo, ReducesLossVariance) {
  tx::manual_seed(65);
  tx::ppl::ParamStore store;
  tx::infer::Program model = [] {
    Tensor z = tx::ppl::sample("z", std::make_shared<nd::Normal>(0.0f, 1.0f));
    tx::ppl::sample("obs", std::make_shared<nd::Normal>(z, Tensor::scalar(0.5f)),
                    Tensor::scalar(1.0f));
  };
  auto guide = std::make_shared<tx::infer::AutoNormal>(
      model, tx::infer::AutoNormalConfig{}, "g", &store);
  tx::infer::Program g = [guide] { (*guide)(); };
  auto loss_variance = [&](int particles) {
    tx::infer::TraceELBO elbo(particles);
    std::vector<double> losses;
    for (int i = 0; i < 50; ++i) {
      losses.push_back(elbo.differentiable_loss(model, g).item());
    }
    double m = 0;
    for (double l : losses) m += l;
    m /= losses.size();
    double v = 0;
    for (double l : losses) v += (l - m) * (l - m);
    return v / losses.size();
  };
  EXPECT_LT(loss_variance(8), loss_variance(1));
}

TEST(GuidedBnn, TrainModeScaleFrozenGuide) {
  // train_scale=false: the posterior scales never move from init.
  tx::manual_seed(66);
  tx::Generator gen(66);
  Tensor x = tx::randn({16, 1}, &gen);
  Tensor y = x.detach();
  auto net = tx::nn::make_mlp({1, 4, 1}, "tanh", &gen);
  tyxe::guides::AutoNormalConfig cfg;
  cfg.init_scale = 0.03f;
  cfg.train_scale = false;
  tyxe::VariationalBNN bnn(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::HomoskedasticGaussian>(16, 0.1f),
      tyxe::guides::auto_normal_factory(cfg));
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  bnn.fit({{{x}, y}}, optim, 100);
  auto dists = bnn.net_guide().get_detached_distributions(bnn.site_names());
  for (const auto& [name, d] : dists) {
    auto* normal = dynamic_cast<nd::Normal*>(d.get());
    ASSERT_NE(normal, nullptr);
    for (std::int64_t i = 0; i < normal->scale().numel(); ++i) {
      EXPECT_NEAR(normal->scale().at(i), 0.03f, 1e-5) << name;
    }
  }
}

}  // namespace
