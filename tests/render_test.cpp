// Tests for the render substrate: cameras/rays, positional encoding,
// compositing invariants, analytic-scene rendering, and a tiny NeRF fit.
#include <gtest/gtest.h>

#include <cmath>

#include "render/volume.h"
#include "tensor/grad_check.h"

namespace tx::render {
namespace {

TEST(Camera, LookAtBasisIsOrthonormal) {
  Camera cam = look_at({2.0f, 1.0f, 0.0f}, {0.0f, 0.0f, 0.0f}, 10.0f, 8, 8);
  auto dot = [](const Vec3& a, const Vec3& b) {
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
  };
  EXPECT_NEAR(dot(cam.forward, cam.forward), 1.0f, 1e-5);
  EXPECT_NEAR(dot(cam.right, cam.right), 1.0f, 1e-5);
  EXPECT_NEAR(dot(cam.forward, cam.right), 0.0f, 1e-5);
  EXPECT_NEAR(dot(cam.forward, cam.up), 0.0f, 1e-5);
  // Forward points from the position towards the origin.
  EXPECT_LT(cam.forward[0], 0.0f);
}

TEST(Camera, CircleCamerasLookInward) {
  auto cams = circle_cameras(8, 3.0f, 0.5f, 10.0f, 4);
  EXPECT_EQ(cams.size(), 8u);
  for (const auto& cam : cams) {
    const float r = std::sqrt(cam.position[0] * cam.position[0] +
                              cam.position[2] * cam.position[2]);
    EXPECT_NEAR(r, 3.0f, 1e-4);
    // Forward roughly towards origin: negative dot with position.
    const float d = cam.forward[0] * cam.position[0] +
                    cam.forward[1] * cam.position[1] +
                    cam.forward[2] * cam.position[2];
    EXPECT_LT(d, 0.0f);
  }
}

TEST(Camera, ArcHoldoutCoversRequestedAngles) {
  // Training arc [0, 3pi/2]; heldout arc (3pi/2, 2pi).
  auto train = circle_cameras(12, 3.0f, 0.0f, 10.0f, 4, 0.0f, 4.712389f);
  auto held = circle_cameras(4, 3.0f, 0.0f, 10.0f, 4, 4.712389f, 6.2831853f);
  for (const auto& cam : held) {
    const float angle = std::atan2(cam.position[2], cam.position[0]);
    const float wrapped = angle < 0.0f ? angle + 6.2831853f : angle;
    EXPECT_GE(wrapped, 4.7f);
  }
  EXPECT_EQ(train.size(), 12u);
}

TEST(Rays, OnePerPixelUnitNorm) {
  Camera cam = look_at({0.0f, 0.0f, 3.0f}, {0.0f, 0.0f, 0.0f}, 6.0f, 4, 4);
  RayBatch rays = camera_rays(cam);
  EXPECT_EQ(rays.origins.shape(), (Shape{16, 3}));
  EXPECT_EQ(rays.directions.shape(), (Shape{16, 3}));
  for (std::int64_t i = 0; i < 16; ++i) {
    float n = 0.0f;
    for (std::int64_t c = 0; c < 3; ++c) {
      n += rays.directions.at(i * 3 + c) * rays.directions.at(i * 3 + c);
      EXPECT_FLOAT_EQ(rays.origins.at(i * 3 + c), cam.position[static_cast<std::size_t>(c)]);
    }
    EXPECT_NEAR(n, 1.0f, 1e-5);
  }
}

TEST(Encoding, ShapeAndValues) {
  Tensor p(Shape{2, 3}, {0.0f, 1.0f, -1.0f, 0.5f, 0.0f, 2.0f});
  Tensor enc = positional_encoding(p, 2);
  EXPECT_EQ(enc.shape(), (Shape{2, 3 + 12}));
  // First three columns are the raw points.
  EXPECT_FLOAT_EQ(enc.at(1), 1.0f);
  // sin at level 0 of p[0][1] = sin(1).
  EXPECT_NEAR(enc.at(3 + 1), std::sin(1.0f), 1e-5);
  // Layout per row: [p | sin(p) | cos(p) | sin(2p) | cos(2p)].
  EXPECT_NEAR(enc.at(6), 1.0f, 1e-5);   // cos(p[0][0]) = cos(0)
  EXPECT_NEAR(enc.at(9), 0.0f, 1e-5);   // sin(2 * 0)
  EXPECT_NEAR(enc.at(12), 1.0f, 1e-5);  // cos(2 * 0)
}

TEST(Composite, EmptyVolumeIsTransparent) {
  Tensor sigma = zeros({2, 4});
  Tensor rgb = full({2, 4, 3}, 0.5f);
  Tensor depths = linspace(1.0f, 2.0f, 4);
  auto out = composite(sigma, rgb, depths);
  EXPECT_NEAR(out.alpha.at(0), 0.0f, 1e-5);
  EXPECT_NEAR(out.rgb.at(0), 0.0f, 1e-5);
}

TEST(Composite, OpaqueFirstSampleWins) {
  Tensor sigma(Shape{1, 3}, {100.0f, 0.0f, 0.0f});
  Tensor rgb = zeros({1, 3, 3});
  rgb.at(0) = 1.0f;  // first sample is red
  rgb.at(5) = 1.0f;  // second sample is blue (never seen)
  Tensor depths = linspace(1.0f, 2.0f, 3);
  auto out = composite(sigma, rgb, depths);
  EXPECT_NEAR(out.alpha.at(0), 1.0f, 1e-3);
  EXPECT_NEAR(out.rgb.at(0), 1.0f, 1e-3);  // red channel
  EXPECT_NEAR(out.rgb.at(2), 0.0f, 1e-3);  // blue blocked
}

TEST(Composite, AlphaBoundedAndWeightsDifferentiable) {
  Generator gen(1);
  Tensor sigma_raw = rand_uniform({2, 4}, 0.1f, 1.5f, &gen);
  Tensor rgb = rand_uniform({2, 4, 3}, 0.0f, 1.0f, &gen);
  Tensor depths = linspace(1.0f, 3.0f, 4);
  auto out = composite(sigma_raw, rgb, depths);
  for (std::int64_t i = 0; i < out.alpha.numel(); ++i) {
    EXPECT_GE(out.alpha.at(i), 0.0f);
    EXPECT_LE(out.alpha.at(i), 1.0f);
  }
  EXPECT_TRUE(grad_check(
      [&](const std::vector<Tensor>& in) {
        auto res = composite(in[0], in[1], depths);
        return add(sum(square(res.rgb)), sum(square(res.alpha)));
      },
      {sigma_raw, rgb}));
}

TEST(Scene, AnalyticSceneHasStructure) {
  AnalyticScene scene;
  // Center of the sphere: dense. Far away: empty.
  Tensor inside(Shape{1, 3}, {0.0f, 0.0f, 0.0f});
  Tensor outside(Shape{1, 3}, {2.5f, 2.5f, 2.5f});
  EXPECT_GT(scene(inside).at(0), 1.0f);
  EXPECT_LT(scene(outside).at(0), 0.0f);
  // On the ring (radius 0.9 in the y=0 plane): dense.
  Tensor on_ring(Shape{1, 3}, {0.9f, 0.0f, 0.0f});
  EXPECT_GT(scene(on_ring).at(0), 1.0f);
}

TEST(Scene, GroundTruthViewsSeeTheObject) {
  auto cams = circle_cameras(2, 2.5f, 0.4f, 10.0f, 12);
  RenderConfig cfg;
  cfg.num_samples = 32;
  cfg.t_near = 1.0f;
  cfg.t_far = 4.5f;
  auto views = ground_truth_views(cams, cfg);
  ASSERT_EQ(views.size(), 2u);
  // Some pixels hit the object (alpha ~ 1), some miss (alpha ~ 0).
  double max_alpha = 0.0, min_alpha = 1.0;
  for (std::int64_t i = 0; i < views[0].alpha.numel(); ++i) {
    max_alpha = std::max<double>(max_alpha, views[0].alpha.at(i));
    min_alpha = std::min<double>(min_alpha, views[0].alpha.at(i));
  }
  EXPECT_GT(max_alpha, 0.8);
  EXPECT_LT(min_alpha, 0.2);
}

TEST(NeRF, FieldShapesAndRenderLossDecreasesUnderTraining) {
  Generator gen(2);
  NeRFField field(/*levels=*/3, /*hidden=*/32, /*depth=*/2, &gen);
  Tensor pts = randn({5, 3}, &gen);
  EXPECT_EQ(field.forward(pts).shape(), (Shape{5, 4}));

  // One training view; a few gradient steps should reduce the loss.
  auto cams = circle_cameras(1, 2.5f, 0.4f, 8.0f, 8);
  RenderConfig cfg;
  cfg.num_samples = 16;
  cfg.t_near = 1.0f;
  cfg.t_far = 4.5f;
  auto target = ground_truth_views(cams, cfg)[0];
  RayBatch rays = camera_rays(cams[0]);
  auto field_fn = [&field](const Tensor& p) { return field.forward(p); };

  auto loss_value = [&] {
    NoGradGuard ng;
    return render_loss(render_rays(field_fn, rays, cfg), target).item();
  };
  const float before = loss_value();
  for (int step = 0; step < 30; ++step) {
    for (auto& s : field.named_parameter_slots()) s.slot->zero_grad();
    Tensor loss = render_loss(render_rays(field_fn, rays, cfg), target);
    loss.backward();
    for (auto& s : field.named_parameter_slots()) {
      s.slot->add_(s.slot->grad(), -0.05f);
    }
  }
  EXPECT_LT(loss_value(), before);
}

TEST(RenderLoss, ZeroForIdenticalImages) {
  RenderResult a{full({4, 3}, 0.3f), full({4}, 0.7f)};
  RenderResult b{full({4, 3}, 0.3f), full({4}, 0.7f)};
  EXPECT_NEAR(render_loss(a, b).item(), 0.0f, 1e-9);
  RenderResult c{full({4, 3}, 0.4f), full({4}, 0.7f)};
  EXPECT_GT(render_loss(a, c).item(), 0.0f);
}

}  // namespace
}  // namespace tx::render
