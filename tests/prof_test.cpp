// Tests for the kernel roofline profiler and allocator-churn attribution
// (obs/prof.h): closed-form FLOP/byte counts for matmul/bmm/conv2d
// forward+backward, churn attribution that is bitwise-identical at 1 vs 4
// pool threads and accounts for (essentially all of) the obs::mem window,
// the shared bench flag parser, and python round-trips of
// validate_bench.py --prof and bench_diff.py on synthetic
// regressed/improved/noisy snapshot pairs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "infer/infer.h"
#include "obs/obs.h"
#include "par/pool.h"
#include "ppl/ppl.h"
#include "tensor/tensor.h"

namespace tx {
namespace {

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::registry().clear();
    obs::prof::reset();
    obs::prof::set_enabled(true);
    obs::prof::reset();
  }
  void TearDown() override {
    obs::prof::set_enabled(false);
    obs::prof::reset();
    par::set_num_threads(1);
    obs::registry().clear();
  }
};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool python3_available() {
  static const bool ok =
      std::system("python3 -c 'import json' > /dev/null 2>&1") == 0;
  return ok;
}

// ---- kernel stream: closed-form FLOP/byte counts -------------------------

TEST_F(ProfTest, OffByDefaultAndHooksAreGated) {
  obs::prof::set_enabled(false);
  obs::prof::reset();
  EXPECT_FALSE(obs::prof::enabled());
  EXPECT_FALSE(obs::prof::has_data());
  obs::prof::on_kernel("matmul", 100, 100, 0.1);
  obs::prof::on_alloc(64);
  obs::prof::on_step();
  EXPECT_TRUE(obs::prof::kernel_table().empty());
  EXPECT_TRUE(obs::prof::churn_table().empty());
  EXPECT_EQ(obs::prof::steps(), 0);
  EXPECT_EQ(obs::prof::section_json(), "");
}

TEST_F(ProfTest, MatmulForwardBackwardClosedForm) {
  const std::int64_t m = 6, k = 5, n = 4;
  tx::Generator gen(0);
  Tensor a = tx::randn({m, k}, &gen).set_requires_grad(true);
  Tensor b = tx::randn({k, n}, &gen).set_requires_grad(true);
  tx::sum(tx::matmul(a, b)).backward();

  const auto table = obs::prof::kernel_table();
  ASSERT_TRUE(table.count("matmul"));
  ASSERT_TRUE(table.count("matmul_bwd"));
  const auto& fwd = table.at("matmul");
  EXPECT_EQ(fwd.calls, 1);
  EXPECT_EQ(fwd.flops, 2 * m * k * n);
  EXPECT_EQ(fwd.bytes, 4 * (m * k + k * n + m * n));
  EXPECT_GE(fwd.seconds, 0.0);
  const auto& bwd = table.at("matmul_bwd");
  EXPECT_EQ(bwd.calls, 1);
  EXPECT_EQ(bwd.flops, 4 * m * k * n);
  EXPECT_EQ(bwd.bytes, 8 * (m * n + m * k + k * n));
}

TEST_F(ProfTest, BmmForwardBackwardClosedForm) {
  const std::int64_t batch = 3, m = 4, k = 6, n = 5;
  tx::Generator gen(0);
  Tensor a = tx::randn({batch, m, k}, &gen).set_requires_grad(true);
  Tensor b = tx::randn({batch, k, n}, &gen).set_requires_grad(true);
  tx::sum(tx::bmm(a, b)).backward();

  const auto table = obs::prof::kernel_table();
  ASSERT_TRUE(table.count("bmm"));
  ASSERT_TRUE(table.count("bmm_bwd"));
  EXPECT_EQ(table.at("bmm").flops, 2 * batch * m * k * n);
  EXPECT_EQ(table.at("bmm").bytes, 4 * batch * (m * k + k * n + m * n));
  EXPECT_EQ(table.at("bmm_bwd").flops, 4 * batch * m * k * n);
  EXPECT_EQ(table.at("bmm_bwd").bytes, 8 * batch * (m * n + m * k + k * n));
}

TEST_F(ProfTest, Conv2dForwardBackwardClosedFormWithBias) {
  const std::int64_t N = 2, ic = 3, ih = 8, iw = 8, oc = 4, kh = 3, kw = 3;
  const std::int64_t stride = 1, padding = 1;
  const std::int64_t oh = (ih + 2 * padding - kh) / stride + 1;
  const std::int64_t ow = (iw + 2 * padding - kw) / stride + 1;
  const std::int64_t patch = ic * kh * kw;
  const std::int64_t spatial = oh * ow;
  const std::int64_t x_numel = N * ic * ih * iw;
  const std::int64_t w_numel = oc * ic * kh * kw;
  const std::int64_t out_numel = N * oc * spatial;

  tx::Generator gen(0);
  Tensor x = tx::randn({N, ic, ih, iw}, &gen).set_requires_grad(true);
  Tensor w = tx::randn({oc, ic, kh, kw}, &gen).set_requires_grad(true);
  Tensor bias = tx::randn({oc}, &gen).set_requires_grad(true);
  tx::sum(tx::conv2d(x, w, bias, stride, padding)).backward();

  const auto table = obs::prof::kernel_table();
  ASSERT_TRUE(table.count("conv2d"));
  ASSERT_TRUE(table.count("conv2d_bwd"));
  const auto& fwd = table.at("conv2d");
  EXPECT_EQ(fwd.calls, 1);
  EXPECT_EQ(fwd.flops, 2 * N * patch * spatial * oc + N * oc * spatial);
  EXPECT_EQ(fwd.bytes, 4 * (x_numel + w_numel + out_numel) +
                           4 * (oc + out_numel));
  const auto& bwd = table.at("conv2d_bwd");
  EXPECT_EQ(bwd.calls, 1);
  EXPECT_EQ(bwd.flops, 4 * N * patch * spatial * oc + N * oc * spatial);
  EXPECT_EQ(bwd.bytes, 4 * (2 * x_numel + 2 * w_numel + 2 * out_numel) +
                           4 * (out_numel + oc));
}

TEST_F(ProfTest, Conv2dNoBiasDropsBiasTerms) {
  const std::int64_t N = 1, ic = 2, ih = 6, iw = 6, oc = 3, kh = 3, kw = 3;
  const std::int64_t oh = ih - kh + 1, ow = iw - kw + 1;
  const std::int64_t patch = ic * kh * kw;
  const std::int64_t spatial = oh * ow;
  tx::Generator gen(0);
  Tensor x = tx::randn({N, ic, ih, iw}, &gen);
  Tensor w = tx::randn({oc, ic, kh, kw}, &gen);
  tx::NoGradGuard ng;
  (void)tx::conv2d(x, w, Tensor(), 1, 0);
  const auto table = obs::prof::kernel_table();
  ASSERT_TRUE(table.count("conv2d"));
  EXPECT_EQ(table.at("conv2d").flops, 2 * N * patch * spatial * oc);
  EXPECT_EQ(table.at("conv2d").bytes,
            4 * (N * ic * ih * iw + oc * patch + N * oc * spatial));
}

TEST_F(ProfTest, ThresholdGatedKernelsRecordAboveThreshold) {
  const std::int64_t n = std::int64_t{1} << 16;  // above kElemParThreshold
  tx::Generator gen(0);
  Tensor a = tx::randn({n}, &gen);
  Tensor b = tx::randn({n}, &gen);
  tx::NoGradGuard ng;
  (void)tx::add(a, b);
  (void)tx::exp(a);
  (void)tx::sum(tx::reshape(a, {256, 256}), {0});

  const auto table = obs::prof::kernel_table();
  ASSERT_TRUE(table.count("elementwise"));
  EXPECT_EQ(table.at("elementwise").flops, n);
  EXPECT_EQ(table.at("elementwise").bytes, 12 * n);
  ASSERT_TRUE(table.count("unary"));
  EXPECT_EQ(table.at("unary").flops, n);
  EXPECT_EQ(table.at("unary").bytes, 8 * n);
  ASSERT_TRUE(table.count("reduce_sum"));
  EXPECT_EQ(table.at("reduce_sum").flops, n);
  EXPECT_EQ(table.at("reduce_sum").bytes, 4 * (n + 256));
}

TEST_F(ProfTest, KernelAggregatesAreThreadCountInvariant) {
  const std::int64_t m = 64, k = 64, n = 64;  // above the par flop threshold
  auto run = [&](int threads) {
    par::set_num_threads(threads);
    obs::prof::reset();
    tx::Generator gen(0);
    Tensor a = tx::randn({m, k}, &gen).set_requires_grad(true);
    Tensor b = tx::randn({k, n}, &gen).set_requires_grad(true);
    tx::sum(tx::matmul(a, b)).backward();
    return obs::prof::kernel_table();
  };
  const auto t1 = run(1);
  const auto t4 = run(4);
  ASSERT_EQ(t1.size(), t4.size());
  for (const auto& [name, ks] : t1) {
    ASSERT_TRUE(t4.count(name)) << name;
    EXPECT_EQ(ks.calls, t4.at(name).calls) << name;
    EXPECT_EQ(ks.flops, t4.at(name).flops) << name;
    EXPECT_EQ(ks.bytes, t4.at(name).bytes) << name;
  }
}

// ---- churn stream --------------------------------------------------------

TEST_F(ProfTest, ChurnAttributesToSpanPathWithSizeClasses) {
  {
    obs::ScopedTimer outer("prof_test_outer");
    obs::ScopedTimer inner("prof_test_inner");
    Tensor t = tx::zeros({16});  // 64 bytes -> first size class
  }
  Tensor big = tx::zeros({1024});  // 4096 bytes at root -> third class
  const auto churn = obs::prof::churn_table();
  ASSERT_TRUE(churn.count("prof_test_outer/prof_test_inner"));
  const auto& nested = churn.at("prof_test_outer/prof_test_inner");
  EXPECT_EQ(nested.allocs, 1);
  EXPECT_EQ(nested.bytes, 64);
  EXPECT_EQ(nested.size_classes[0], 1);
  ASSERT_TRUE(churn.count("(root)"));
  const auto& root = churn.at("(root)");
  EXPECT_GE(root.allocs, 1);
  EXPECT_GE(root.bytes, 4096);
  EXPECT_GE(root.size_classes[2], 1);  // 4096 <= 16384
}

TEST_F(ProfTest, ChurnCoversAllocWindow) {
  obs::prof::set_enabled(false);
  obs::prof::set_enabled(true);  // re-captures the mem baseline
  obs::prof::reset();
  tx::Generator gen(0);
  {
    obs::ScopedTimer span("prof_test_window");
    for (int i = 0; i < 50; ++i) {
      Tensor t = tx::randn({257}, &gen);
      (void)tx::add(t, t);
    }
  }
  const std::int64_t window = obs::prof::window_allocated_bytes();
  ASSERT_GT(window, 0);
  // Every positive account() delta is attributed somewhere, so attribution
  // should cover (at least) 95% of the window — in this self-contained test
  // it is exact.
  EXPECT_GE(obs::prof::attributed_bytes(), window * 95 / 100);
  EXPECT_LE(obs::prof::attributed_bytes(), window);
}

// The multi-particle ELBO fans particles out across pool workers
// (particle 0 inline, the rest via par::run_tasks), so worker threads
// allocate tensors under the submitter's span path. Aggregated churn must be
// bitwise-identical between 1 and 4 threads.
TEST_F(ProfTest, ChurnIsBitwiseIdenticalAcrossPoolThreadCounts) {
  auto run = [&](int threads) {
    par::set_num_threads(threads);
    obs::prof::reset();
    tx::manual_seed(0);
    tx::ppl::ParamStore store;
    Tensor data = tx::randn({32}, nullptr);
    tx::infer::Program model = [data] {
      Tensor z =
          tx::ppl::sample("z", std::make_shared<tx::dist::Normal>(0.0f, 1.0f));
      tx::ppl::sample(
          "obs", std::make_shared<tx::dist::Normal>(z, Tensor::scalar(0.5f)),
          data);
    };
    auto guide = std::make_shared<tx::infer::AutoNormal>(
        model, tx::infer::AutoNormalConfig{}, "g", &store);
    tx::infer::TraceELBO elbo(8);
    {
      obs::ScopedTimer span("prof_test_elbo");
      (void)elbo.differentiable_loss(model, [guide] { (*guide)(); });
    }
    return obs::prof::churn_table();
  };
  const auto c1 = run(1);
  const auto c4 = run(4);
  ASSERT_FALSE(c1.empty());
  ASSERT_EQ(c1.size(), c4.size());
  for (const auto& [path, churn] : c1) {
    ASSERT_TRUE(c4.count(path)) << path;
    EXPECT_TRUE(churn == c4.at(path)) << "churn differs for span " << path;
  }
}

TEST_F(ProfTest, StepsCountFromSvi) {
  tx::manual_seed(0);
  tx::ppl::ParamStore store;
  Tensor data = tx::randn({8}, nullptr);
  tx::infer::Program model = [data] {
    Tensor z =
        tx::ppl::sample("z", std::make_shared<tx::dist::Normal>(0.0f, 1.0f));
    tx::ppl::sample(
        "obs", std::make_shared<tx::dist::Normal>(z, Tensor::scalar(0.5f)),
        data);
  };
  auto guide = std::make_shared<tx::infer::AutoNormal>(
      model, tx::infer::AutoNormalConfig{}, "g", &store);
  tx::infer::SVI svi(model, [guide] { (*guide)(); },
                     std::make_shared<tx::infer::Adam>(1e-2),
                     std::make_shared<tx::infer::TraceELBO>(1), &store);
  for (int i = 0; i < 3; ++i) (void)svi.step();
  EXPECT_EQ(obs::prof::steps(), 3);
}

// ---- snapshot section ----------------------------------------------------

TEST_F(ProfTest, SnapshotEmbedsProfSectionOnlyWhenProfiled) {
  tx::Generator gen(0);
  Tensor a = tx::randn({8, 8}, &gen);
  tx::NoGradGuard ng;
  (void)tx::matmul(a, a);
  const std::string with = temp_path("prof_snapshot_on.json");
  ASSERT_TRUE(obs::EventSink::write_snapshot(with, "prof_test"));
  EXPECT_NE(read_file(with).find("\"prof\""), std::string::npos);
  EXPECT_NE(read_file(with).find("tx.prof.v1"), std::string::npos);

  obs::prof::set_enabled(false);
  obs::prof::reset();
  const std::string without = temp_path("prof_snapshot_off.json");
  ASSERT_TRUE(obs::EventSink::write_snapshot(without, "prof_test"));
  EXPECT_EQ(read_file(without).find("\"prof\""), std::string::npos);
  std::remove(with.c_str());
  std::remove(without.c_str());
}

TEST_F(ProfTest, SectionJsonCarriesKernelAndChurnTables) {
  tx::Generator gen(0);
  {
    obs::ScopedTimer span("prof_test_section");
    Tensor a = tx::randn({16, 16}, &gen);
    tx::NoGradGuard ng;
    (void)tx::matmul(a, a);
  }
  const std::string json = obs::prof::section_json();
  EXPECT_NE(json.find("\"schema\": \"tx.prof.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"matmul\""), std::string::npos);
  EXPECT_NE(json.find("\"flops\": " + std::to_string(2 * 16 * 16 * 16)),
            std::string::npos);
  EXPECT_NE(json.find("prof_test_section"), std::string::npos);
  EXPECT_NE(json.find("\"size_classes\""), std::string::npos);
}

// ---- bench flag parser ---------------------------------------------------

TEST(BenchFlagsTest, ParsesAndStripsRecognizedFlags) {
  const char* raw[] = {"bench",     "--trace", "t.json", "--keep",
                       "--diag",    "d.json",  "--prof", "--also-keep"};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = static_cast<int>(argv.size());
  const obs::BenchFlags flags = obs::parse_bench_flags(argc, argv.data());
  EXPECT_EQ(flags.trace_path, "t.json");
  EXPECT_EQ(flags.diag_path, "d.json");
  EXPECT_TRUE(flags.prof);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "--keep");
  EXPECT_STREQ(argv[2], "--also-keep");
}

TEST(BenchFlagsTest, DefaultsAndEnvFallback) {
  unsetenv("TYXE_TRACE");
  unsetenv("TYXE_DIAG");
  unsetenv("TYXE_PROF");
  const char* raw[] = {"bench"};
  std::vector<char*> argv{const_cast<char*>(raw[0])};
  int argc = 1;
  obs::BenchFlags flags = obs::parse_bench_flags(argc, argv.data());
  EXPECT_EQ(flags.trace_path, "");
  EXPECT_EQ(flags.diag_path, "");
  EXPECT_FALSE(flags.prof);

  setenv("TYXE_PROF", "1", 1);
  argc = 1;
  flags = obs::parse_bench_flags(argc, argv.data());
  EXPECT_TRUE(flags.prof);
  setenv("TYXE_PROF", "0", 1);
  argc = 1;
  flags = obs::parse_bench_flags(argc, argv.data());
  EXPECT_FALSE(flags.prof);
  unsetenv("TYXE_PROF");
}

TEST(BenchFlagsTest, TrailingPathFlagWarnsAndIsStripped) {
  unsetenv("TYXE_TRACE");
  unsetenv("TYXE_DIAG");
  const char* raw[] = {"bench", "--trace"};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = 2;
  const obs::BenchFlags flags = obs::parse_bench_flags(argc, argv.data());
  EXPECT_EQ(flags.trace_path, "");
  EXPECT_EQ(argc, 1);
}

TEST(BenchFlagsTest, LegacyEntryPointsShareTheHelper) {
  unsetenv("TYXE_TRACE");
  unsetenv("TYXE_DIAG");
  const char* raw[] = {"bench", "--trace", "x.json", "--diag", "y.json"};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  const int argc = static_cast<int>(argv.size());
  EXPECT_EQ(obs::trace_path_from_args(argc, argv.data()), "x.json");
  EXPECT_EQ(obs::diag::diag_path_from_args(argc, argv.data()), "y.json");
}

// ---- python round-trips --------------------------------------------------

#ifdef TX_SOURCE_DIR

TEST_F(ProfTest, PythonRoundTripValidateProf) {
  if (!python3_available()) GTEST_SKIP() << "python3 not available";
  tx::Generator gen(0);
  {
    obs::ScopedTimer span("prof_test_py");
    Tensor a = tx::randn({16, 16}, &gen);
    tx::NoGradGuard ng;
    (void)tx::matmul(a, a);
  }
  const std::string path = temp_path("prof_roundtrip.json");
  ASSERT_TRUE(obs::EventSink::write_snapshot(path, "prof_test"));
  const std::string cmd = "python3 " TX_SOURCE_DIR
                          "/scripts/validate_bench.py --prof " +
                          path + " > /dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "validate_bench.py --prof failed";

  // A snapshot without a prof section must fail under --prof.
  obs::prof::set_enabled(false);
  obs::prof::reset();
  const std::string bare = temp_path("prof_roundtrip_bare.json");
  ASSERT_TRUE(obs::EventSink::write_snapshot(bare, "prof_test"));
  const std::string cmd2 = "python3 " TX_SOURCE_DIR
                           "/scripts/validate_bench.py --prof " +
                           bare + " > /dev/null 2>&1";
  EXPECT_NE(std::system(cmd2.c_str()), 0);
  std::remove(path.c_str());
  std::remove(bare.c_str());
}

TEST_F(ProfTest, PythonRoundTripBenchDiff) {
  if (!python3_available()) GTEST_SKIP() << "python3 not available";
  tx::Generator gen(0);
  {
    obs::ScopedTimer span("prof_test_diff");
    Tensor a = tx::randn({16, 16}, &gen);
    tx::NoGradGuard ng;
    (void)tx::matmul(a, a);
  }
  const std::string base = temp_path("prof_diff_base.json");
  ASSERT_TRUE(obs::EventSink::write_snapshot(base, "prof_test"));

  auto run_diff = [&](const std::string& args) {
    const std::string cmd = "python3 " TX_SOURCE_DIR "/scripts/bench_diff.py " +
                            args + " > /dev/null 2>&1";
    return std::system(cmd.c_str());
  };
  // Identical pair passes.
  EXPECT_EQ(run_diff(base + " " + base), 0);

  // A regressed FLOP count (EXACT class) fails even within any tolerance.
  const std::string doctored = temp_path("prof_diff_regressed.json");
  const std::string doctor_cmd =
      "python3 -c \"import json; d=json.load(open('" + base +
      "')); d['prof']['kernels']['matmul']['flops'] = "
      "int(d['prof']['kernels']['matmul']['flops']*1.1); "
      "json.dump(d, open('" +
      doctored + "','w'))\"";
  ASSERT_EQ(std::system(doctor_cmd.c_str()), 0);
  EXPECT_NE(run_diff(base + " " + doctored), 0);
  // Improvements drift the EXACT metric too: the baseline must be updated,
  // not silently beaten.
  EXPECT_NE(run_diff(doctored + " " + base), 0);

  // Timing noise alone is warn-only: doctor a timing metric by 2x.
  const std::string noisy = temp_path("prof_diff_noisy.json");
  const std::string noise_cmd =
      "python3 -c \"import json; d=json.load(open('" + base +
      "')); d['prof']['kernels']['matmul']['seconds'] = "
      "d['prof']['kernels']['matmul']['seconds']*2 + 1.0; "
      "json.dump(d, open('" +
      noisy + "','w'))\"";
  ASSERT_EQ(std::system(noise_cmd.c_str()), 0);
  EXPECT_EQ(run_diff(base + " " + noisy), 0);
  // ... and gates under --gate-timing.
  EXPECT_NE(run_diff("--gate-timing " + base + " " + noisy), 0);

  // Median-of-N: one noisy run among three sane ones is absorbed.
  EXPECT_EQ(run_diff(base + " " + noisy + " " + base + " " + base), 0);

  std::remove(base.c_str());
  std::remove(doctored.c_str());
  std::remove(noisy.c_str());
}

#endif  // TX_SOURCE_DIR

}  // namespace
}  // namespace tx
