// tx::alloc — per-step buffer recycling. These tests pin down the three
// contracts the module makes:
//   1. recycling semantics: buffers donated by dying tensors inside a
//      StepScope are served back for later allocations of compatible size,
//      oversized requests always bypass the pool;
//   2. accounting exactness: obs::mem live bytes return to baseline once
//      tensors die and the pool is trimmed, and churn attribution covers the
//      memory window exactly (coverage == 1.0) with recycling active;
//   3. the payoff: a fig1-shaped SVI training loop allocates < 1/5 of the
//      bytes per step that the same loop allocates with the arena disabled.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/distributions.h"
#include "infer/infer.h"
#include "obs/mem.h"
#include "obs/prof.h"
#include "tensor/alloc.h"

namespace tx::infer {
namespace {

using dist::Normal;

/// Restores the process-wide arena switch (tests toggle it).
class ArenaGuard {
 public:
  ArenaGuard() : saved_(alloc::enabled()) {}
  ~ArenaGuard() { alloc::set_enabled(saved_); }

 private:
  bool saved_;
};

TEST(Arena, RecyclesTensorBuffersWithinStepScope) {
  ArenaGuard guard;
  alloc::set_enabled(true);
  alloc::trim_thread_pool();
  alloc::reset_thread_stats();
  const std::int64_t live0 = obs::mem::live_bytes();
  const std::int64_t total0 = obs::mem::total_allocated_bytes();
  {
    alloc::StepScope step;
    { Tensor t = zeros(Shape{1024}); }  // dies inside the scope -> donated
    { Tensor u = zeros(Shape{1000}); }  // capacity 1024 in [1000, 2000] -> hit
  }
  const alloc::Stats s = alloc::thread_stats();
  EXPECT_GE(s.donated, 1);
  EXPECT_GE(s.hits, 1);
  // One real heap allocation total: the second tensor reused the first's
  // buffer, so cumulative allocation grew by exactly one 1024-float buffer.
  EXPECT_EQ(obs::mem::total_allocated_bytes() - total0, 1024 * 4);
  // The recycled buffer is still resident in the pool (counted live) until
  // trimmed; after the trim the books are exactly back at baseline.
  alloc::trim_thread_pool();
  EXPECT_EQ(obs::mem::live_bytes(), live0);
}

TEST(Arena, InactiveWithoutStepScope) {
  ArenaGuard guard;
  alloc::set_enabled(true);
  EXPECT_FALSE(alloc::active());
  alloc::trim_thread_pool();
  alloc::reset_thread_stats();
  { Tensor t = zeros(Shape{512}); }
  { Tensor u = zeros(Shape{512}); }
  const alloc::Stats s = alloc::thread_stats();
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.donated, 0);
  EXPECT_EQ(s.pooled_bytes, 0);
}

TEST(Arena, KillSwitchDisablesRecycling) {
  ArenaGuard guard;
  alloc::set_enabled(false);
  alloc::trim_thread_pool();
  alloc::reset_thread_stats();
  {
    alloc::StepScope step;
    EXPECT_FALSE(alloc::active());
    { Tensor t = zeros(Shape{512}); }
    { Tensor u = zeros(Shape{512}); }
  }
  const alloc::Stats s = alloc::thread_stats();
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.donated, 0);
}

TEST(Arena, OversizedBuffersBypassThePool) {
  ArenaGuard guard;
  alloc::set_enabled(true);
  alloc::trim_thread_pool();
  alloc::reset_thread_stats();
  const std::int64_t big = alloc::kMaxPooledBytes / 4 + 1;  // floats
  const std::int64_t live0 = obs::mem::live_bytes();
  {
    alloc::StepScope step;
    { Tensor t = zeros(Shape{big}); }
    { Tensor u = zeros(Shape{big}); }
  }
  const alloc::Stats s = alloc::thread_stats();
  EXPECT_EQ(s.donated, 0);
  EXPECT_EQ(s.pooled_bytes, 0);
  // Oversized buffers free normally, so no trim is needed to balance.
  EXPECT_EQ(obs::mem::live_bytes(), live0);
}

/// A small fig1-shaped model: two-layer MLP regression with Gaussian weight
/// priors and a Normal likelihood — the op mix (matmul, relu, broadcast,
/// gauss_logpdf_sum, optimizer updates) of the fig1 bench at reduced size.
struct MlpModel {
  Tensor x, y;
  void operator()() const {
    Tensor w1 = ppl::sample(
        "w1", std::make_shared<Normal>(zeros(Shape{32, 64}),
                                       full(Shape{32, 64}, 1.0f)));
    Tensor w2 = ppl::sample(
        "w2", std::make_shared<Normal>(zeros(Shape{64, 16}),
                                       full(Shape{64, 16}, 1.0f)));
    Tensor h = relu(matmul(x, w1));
    Tensor mu = matmul(h, w2);
    ppl::sample("obs",
                std::make_shared<Normal>(mu, full(Shape{64, 16}, 0.1f)), y);
  }
};

/// Total heap bytes (as seen by obs::mem) allocated by `steps` SVI steps.
std::int64_t bytes_for_steps(SVI& svi, int steps) {
  const std::int64_t t0 = obs::mem::total_allocated_bytes();
  for (int i = 0; i < steps; ++i) svi.step();
  return obs::mem::total_allocated_bytes() - t0;
}

TEST(Arena, SviStepsAllocateUnderOneFifthOfUnpooledBytes) {
  ArenaGuard guard;
  manual_seed(7);
  MlpModel m{randn(Shape{64, 32}), randn(Shape{64, 16})};

  auto make_svi = [&](ppl::ParamStore& store,
                      std::shared_ptr<AutoNormal>& guide) {
    guide = std::make_shared<AutoNormal>([m] { m(); }, AutoNormalConfig{}, "g",
                                         &store);
    return SVI([m] { m(); }, [guide] { (*guide)(); },
               std::make_shared<Adam>(0.01),
               std::make_shared<TraceMeanFieldELBO>(1), &store);
  };

  alloc::set_enabled(false);
  ppl::ParamStore store_off;
  std::shared_ptr<AutoNormal> guide_off;
  SVI svi_off = make_svi(store_off, guide_off);
  bytes_for_steps(svi_off, 3);  // warm up lazy params + optimizer state
  const std::int64_t bytes_off = bytes_for_steps(svi_off, 10);

  alloc::set_enabled(true);
  alloc::trim_thread_pool();
  ppl::ParamStore store_on;
  std::shared_ptr<AutoNormal> guide_on;
  SVI svi_on = make_svi(store_on, guide_on);
  bytes_for_steps(svi_on, 3);  // warm-up also populates the pool
  const std::int64_t bytes_on = bytes_for_steps(svi_on, 10);
  alloc::trim_thread_pool();

  ASSERT_GT(bytes_off, 0);
  EXPECT_LT(bytes_on * 5, bytes_off)
      << "arena-on steps allocated " << bytes_on << " bytes vs " << bytes_off
      << " with the arena off";
}

TEST(Arena, ChurnCoverageStaysExactlyOneUnderRecycling) {
  ArenaGuard guard;
  manual_seed(11);
  alloc::set_enabled(true);
  alloc::trim_thread_pool();
  MlpModel m{randn(Shape{64, 32}), randn(Shape{64, 16})};
  ppl::ParamStore store;
  auto guide = std::make_shared<AutoNormal>([m] { m(); }, AutoNormalConfig{},
                                            "g", &store);
  SVI svi([m] { m(); }, [guide] { (*guide)(); }, std::make_shared<Adam>(0.01),
          std::make_shared<TraceMeanFieldELBO>(1), &store);
  svi.step();  // outside the profiled window: lazy param/optimizer setup

  obs::prof::reset();
  obs::prof::set_enabled(true);
  for (int i = 0; i < 5; ++i) svi.step();
  obs::prof::flush_thread_cache();
  // Every byte obs::mem saw in the window must be attributed to a span:
  // pool hits report neither, fresh allocations report both — identically.
  EXPECT_EQ(obs::prof::attributed_bytes(),
            obs::prof::window_allocated_bytes());
  obs::prof::set_enabled(false);
  obs::prof::reset();
  alloc::trim_thread_pool();
}

}  // namespace
}  // namespace tx::infer
