// Tests for tensor serialization and module/param-store checkpointing.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/tyxe.h"
#include "nn/checkpoint.h"
#include "tensor/serialize.h"

namespace {

namespace nd = tx::dist;
using tx::Shape;
using tx::Tensor;

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Serialize, TensorRoundTripIsLossless) {
  tx::Generator gen(1);
  Tensor t = tx::randn({3, 4, 2}, &gen);
  std::stringstream ss;
  tx::save_tensor(ss, t);
  Tensor back = tx::load_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(back.at(i), t.at(i));  // exact: hexfloat round trip
  }
  EXPECT_TRUE(back.is_leaf());
  EXPECT_FALSE(back.requires_grad());
}

TEST(Serialize, ScalarAndExtremeValues) {
  Tensor t(Shape{}, {-1.5e-30f});
  std::stringstream ss;
  tx::save_tensor(ss, t);
  EXPECT_EQ(tx::load_tensor(ss).item(), -1.5e-30f);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream ss("NOPE 2 2 2");
  EXPECT_THROW(tx::load_tensor(ss), tx::Error);
  std::stringstream truncated("TXT1 1 4\n0x1p+0 0x1p+0");
  EXPECT_THROW(tx::load_tensor(truncated), tx::Error);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = temp_path("tensor.txt");
  Tensor t(Shape{2, 2}, {1.0f, -2.5f, 3.25f, 0.0f});
  tx::save_tensor_file(path, t);
  EXPECT_TRUE(tx::allclose(tx::load_tensor_file(path), t));
  std::remove(path.c_str());
  EXPECT_THROW(tx::load_tensor_file(path), tx::Error);
}

TEST(Checkpoint, ModuleStateRoundTrip) {
  tx::Generator gen(2);
  auto a = tx::nn::make_mlp({3, 8, 2}, "relu", &gen);
  auto b = tx::nn::make_mlp({3, 8, 2}, "relu", &gen);
  Tensor x = tx::randn({4, 3}, &gen);
  EXPECT_FALSE(tx::allclose(a->forward(x), b->forward(x)));
  const std::string path = temp_path("mlp.ckpt");
  tx::nn::save_checkpoint(path, *a);
  tx::nn::load_checkpoint(path, *b);
  EXPECT_TRUE(tx::allclose(a->forward(x), b->forward(x)));
  std::remove(path.c_str());
}

TEST(Checkpoint, ResNetWithBuffersRoundTrip) {
  tx::Generator gen(3);
  auto a = tx::nn::make_resnet8(4, 4, 3, &gen);
  // Run a training forward so BatchNorm running stats are non-trivial.
  a->forward(tx::randn({8, 3, 8, 8}, &gen));
  auto b = tx::nn::make_resnet8(4, 4, 3, &gen);
  const std::string path = temp_path("resnet.ckpt");
  tx::nn::save_checkpoint(path, *a);
  tx::nn::load_checkpoint(path, *b);
  a->eval();
  b->eval();
  Tensor x = tx::randn({2, 3, 8, 8}, &gen);
  EXPECT_TRUE(tx::allclose(a->forward(x), b->forward(x), 1e-5f));
  std::remove(path.c_str());
}

TEST(Checkpoint, MismatchedArchitectureThrows) {
  tx::Generator gen(4);
  auto a = tx::nn::make_mlp({3, 8, 2}, "relu", &gen);
  auto b = tx::nn::make_mlp({3, 9, 2}, "relu", &gen);
  const std::string path = temp_path("mismatch.ckpt");
  tx::nn::save_checkpoint(path, *a);
  EXPECT_THROW(tx::nn::load_checkpoint(path, *b), tx::Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, ParamStoreRoundTripThroughLiveHandles) {
  tx::ppl::ParamStore store;
  Tensor p = store.get_or_create("guide.loc.w", tx::full({3}, 2.0f));
  store.get_or_create("guide.scale.w", tx::full({3}, -1.0f));
  const std::string path = temp_path("store.ckpt");
  tx::ppl::save_param_store(path, store);
  p.fill_(9.0f);
  tx::ppl::load_param_store(path, store);
  // The live handle sees the restored values (copy-through semantics).
  EXPECT_FLOAT_EQ(p.at(0), 2.0f);
  // Loading into an empty store recreates params.
  tx::ppl::ParamStore fresh;
  tx::ppl::load_param_store(path, fresh);
  EXPECT_EQ(fresh.size(), 2u);
  EXPECT_TRUE(fresh.get("guide.loc.w").requires_grad());
  std::remove(path.c_str());
}

TEST(Checkpoint, FittedBnnGuideSurvivesReload) {
  // The pretrain-once / Bayesianize-later workflow: fit a BNN, checkpoint
  // the guide params, reload into a fresh BNN of the same architecture, and
  // get the same predictive distribution.
  tx::manual_seed(5);
  tx::Generator gen(5);
  Tensor x = tx::linspace(-1.0f, 1.0f, 16).reshape({16, 1});
  Tensor y = tx::mul(x, x).detach();
  auto make_bnn = [](tx::Generator& g) {
    auto net = tx::nn::make_mlp({1, 8, 1}, "tanh", &g);
    return std::make_shared<tyxe::VariationalBNN>(
        net,
        std::make_shared<tyxe::IIDPrior>(
            std::make_shared<nd::Normal>(0.0f, 1.0f)),
        std::make_shared<tyxe::HomoskedasticGaussian>(16, 0.1f),
        tyxe::guides::auto_normal_factory());
  };
  auto bnn = make_bnn(gen);
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  bnn->fit({{{x}, y}}, optim, 150);
  const std::string path = temp_path("bnn_guide.ckpt");
  tx::ppl::save_param_store(path, bnn->param_store());

  tx::Generator gen2(99);
  auto bnn2 = make_bnn(gen2);
  // Touch the guide once so its parameters exist, then load.
  bnn2->predict(x, 1);
  tx::ppl::load_param_store(path, bnn2->param_store());
  // Posterior means agree => mean predictions agree (average out sampling).
  Tensor p1 = bnn->predict(x, 64);
  Tensor p2 = bnn2->predict(x, 64);
  EXPECT_LT(tx::mean(tx::square(tx::sub(p1, p2))).item(), 5e-3f);
  std::remove(path.c_str());
}

}  // namespace
