// Property tests for the log-bucketed LogHistogram (obs/hist.h): quantile
// estimates must stay within the documented relative-error bound of the
// exact sorted-order statistics across adversarial shapes, and merging
// per-worker histograms must equal one histogram of the concatenated stream
// bitwise on every bucket count.
#include "obs/hist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/registry.h"
#include "util/random.h"

namespace {

using tx::obs::HistogramSnapshot;
using tx::obs::LogHistogram;

/// Exact nearest-rank (lower) order statistic — the quantile definition the
/// bucket fallback approximates.
double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1));
  return xs[rank];
}

/// Assert p50/p90/p99 of `h` match the exact order statistics of `values`
/// within the documented bound. The estimate is the bucket midpoint clamped
/// to [min, max], and the exact value lies in the same bucket, so
/// |est - exact| <= kMaxRelativeError * exact.
void expect_quantiles_close(const LogHistogram& h,
                            const std::vector<double>& values,
                            const char* label) {
  const HistogramSnapshot snap = h.snapshot();
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = exact_quantile(values, q);
    const double est = snap.quantile(q);
    EXPECT_LE(std::abs(est - exact),
              LogHistogram::kMaxRelativeError * exact + 1e-300)
        << label << ": q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(LogHistogramTest, IndexBucketsAreConsistent) {
  // Every recorded value must land in a bucket whose [lower, upper) range
  // contains it, with the midpoint within the error bound.
  tx::Generator gen(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = std::exp(gen.uniform(-18.0, 6.0));
    const int idx = LogHistogram::index_of(v);
    ASSERT_GT(idx, 0) << v;
    ASSERT_LT(idx, LogHistogram::kBuckets - 1) << v;
    EXPECT_GE(v, LogHistogram::lower_edge_of(idx)) << v;
    EXPECT_LT(v, LogHistogram::upper_edge_of(idx)) << v;
    const double mid = LogHistogram::representative_of(idx);
    EXPECT_LE(std::abs(mid - v) / v, LogHistogram::kMaxRelativeError) << v;
  }
}

TEST(LogHistogramTest, UnderflowAndOverflowBuckets) {
  EXPECT_EQ(LogHistogram::index_of(0.0), 0);
  EXPECT_EQ(LogHistogram::index_of(-1.0), 0);
  EXPECT_EQ(LogHistogram::index_of(std::nan("")), 0);
  EXPECT_EQ(LogHistogram::index_of(1e-300), 0);
  EXPECT_EQ(LogHistogram::index_of(1e300), LogHistogram::kBuckets - 1);
  EXPECT_EQ(LogHistogram::index_of(std::numeric_limits<double>::infinity()),
            LogHistogram::kBuckets - 1);
  // The range edges themselves.
  EXPECT_EQ(LogHistogram::index_of(std::ldexp(1.0, LogHistogram::kMaxExp)),
            LogHistogram::kBuckets - 1);
  EXPECT_EQ(LogHistogram::index_of(std::ldexp(1.0, LogHistogram::kMinExp)), 1);
}

TEST(LogHistogramTest, QuantileErrorBoundConstant) {
  // Constant stream: every value in one bucket; clamping to [min, max] makes
  // the estimate exact.
  LogHistogram h;
  std::vector<double> values(1000, 0.0137);
  for (const double v : values) h.record(v);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0137);
  EXPECT_DOUBLE_EQ(snap.quantile(0.99), 0.0137);
  expect_quantiles_close(h, values, "constant");
}

TEST(LogHistogramTest, QuantileErrorBoundBimodal) {
  // Two tight modes four orders of magnitude apart — the shape that breaks
  // fixed-bucket reservoirs.
  tx::Generator gen(11);
  LogHistogram h;
  std::vector<double> values;
  for (int i = 0; i < 4000; ++i) {
    const double mode = (i % 4 == 0) ? 1.5 : 1.2e-4;
    const double v = mode * (1.0 + 0.01 * gen.uniform(-1.0, 1.0));
    values.push_back(v);
    h.record(v);
  }
  expect_quantiles_close(h, values, "bimodal");
}

TEST(LogHistogramTest, QuantileErrorBoundHeavyTail) {
  // Log-normal-ish heavy tail spanning many octaves.
  tx::Generator gen(13);
  LogHistogram h;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    double g = 0.0;
    for (int k = 0; k < 6; ++k) g += gen.uniform(-1.0, 1.0);
    const double v = 1e-3 * std::exp(1.7 * g);
    values.push_back(v);
    h.record(v);
  }
  expect_quantiles_close(h, values, "heavy-tail");
}

TEST(LogHistogramTest, MergeEqualsConcatenationBitwise) {
  // Exact-merge contract: merging per-worker histograms equals one
  // histogram fed the concatenated stream, bitwise on every bucket count.
  tx::Generator gen(17);
  constexpr int kWorkers = 5;
  LogHistogram workers[kWorkers];
  LogHistogram concatenated;
  for (int i = 0; i < 30000; ++i) {
    const double v = std::exp(gen.uniform(-16.0, 4.0));
    workers[i % kWorkers].record(v);
    concatenated.record(v);
  }
  LogHistogram merged;
  for (const auto& w : workers) merged.merge_from(w);

  EXPECT_EQ(merged.count(), concatenated.count());
  const HistogramSnapshot a = merged.snapshot();
  const HistogramSnapshot b = concatenated.snapshot();
  ASSERT_EQ(a.bucket_counts.size(), b.bucket_counts.size());
  for (std::size_t i = 0; i < a.bucket_counts.size(); ++i) {
    EXPECT_EQ(a.bucket_counts[i], b.bucket_counts[i]) << "bucket " << i;
  }
  ASSERT_EQ(a.bounds.size(), b.bounds.size());
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  // Quantiles agree exactly (same buckets, same counts, same clamp range).
  EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));
  EXPECT_EQ(a.quantile(0.99), b.quantile(0.99));
}

TEST(LogHistogramTest, MergeFromEmptyOperandIsIdentity) {
  // An empty operand must leave the target untouched — including min/max,
  // which start at +/-inf sentinels an unguarded merge would propagate.
  LogHistogram target;
  target.record(0.25);
  target.record(4.0);
  const HistogramSnapshot before = target.snapshot();

  const LogHistogram empty;
  target.merge_from(empty);

  const HistogramSnapshot after = target.snapshot();
  EXPECT_EQ(after.count, before.count);
  EXPECT_EQ(after.sum, before.sum);
  EXPECT_EQ(after.min, before.min);
  EXPECT_EQ(after.max, before.max);
  ASSERT_EQ(after.bucket_counts.size(), before.bucket_counts.size());
  for (std::size_t i = 0; i < after.bucket_counts.size(); ++i) {
    EXPECT_EQ(after.bucket_counts[i], before.bucket_counts[i]) << "bucket " << i;
  }
  EXPECT_EQ(after.quantile(0.5), before.quantile(0.5));
  EXPECT_EQ(after.quantile(0.99), before.quantile(0.99));

  // Empty-into-empty stays a genuine empty histogram (count 0, no buckets),
  // not one poisoned by the other's sentinels.
  LogHistogram still_empty;
  still_empty.merge_from(empty);
  EXPECT_EQ(still_empty.count(), 0);
  const HistogramSnapshot snap = still_empty.snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_TRUE(snap.bucket_counts.empty());
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
}

TEST(LogHistogramTest, SnapshotTrimsToNonEmptyRange) {
  LogHistogram h;
  h.record(0.001);
  h.record(0.002);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 2);
  // Two values an octave apart: a handful of buckets, not kBuckets.
  EXPECT_GE(snap.bucket_counts.size(), 2u);
  EXPECT_LE(snap.bucket_counts.size(), 64u);
  EXPECT_EQ(snap.bounds.size(), snap.bucket_counts.size());
  EXPECT_EQ(snap.representatives.size(), snap.bucket_counts.size());
  EXPECT_TRUE(snap.samples.empty());
  std::int64_t total = 0;
  for (const auto c : snap.bucket_counts) total += c;
  EXPECT_EQ(total, 2);
}

TEST(LogHistogramTest, SumMinMaxTracked) {
  LogHistogram h;
  h.record(0.25);
  h.record(1.0);
  h.record(4.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3);
  EXPECT_DOUBLE_EQ(snap.sum, 5.25);
  EXPECT_DOUBLE_EQ(snap.min, 0.25);
  EXPECT_DOUBLE_EQ(snap.max, 4.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 1.75);
}

TEST(LogHistogramTest, ResetClearsEverything) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.record(0.01 * (i + 1));
  h.reset();
  EXPECT_EQ(h.count(), 0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_TRUE(snap.bucket_counts.empty());
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
}

TEST(LogHistogramTest, RegistryMergesBothHistogramKinds) {
  auto& reg = tx::obs::registry();
  reg.clear();
  reg.histogram("fixed.kind").record(0.5);
  reg.log_histogram("log.kind").record(0.5);
  const auto hists = reg.histograms();
  ASSERT_EQ(hists.count("fixed.kind"), 1u);
  ASSERT_EQ(hists.count("log.kind"), 1u);
  EXPECT_FALSE(hists.at("fixed.kind").samples.empty());
  EXPECT_TRUE(hists.at("log.kind").samples.empty());
  EXPECT_FALSE(hists.at("log.kind").representatives.empty());
  reg.clear();
}

}  // namespace
