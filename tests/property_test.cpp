// Property-based invariant tests, parameterized over seeds: algebraic laws
// of the tensor ops, shift invariances, handler idempotence, and the
// strongest inference property available — at the exact posterior the ELBO
// equals the log evidence.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/distributions.h"
#include "infer/infer.h"
#include "ppl/ppl.h"

namespace {

namespace nd = tx::dist;
using tx::Shape;
using tx::Tensor;

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  tx::Generator gen{GetParam()};
};

TEST_P(SeededProperty, ElementwiseAlgebraLaws) {
  Tensor a = tx::rand_uniform({3, 4}, 0.5f, 2.0f, &gen);
  Tensor b = tx::rand_uniform({4}, 0.5f, 2.0f, &gen);      // broadcasts
  Tensor c = tx::rand_uniform({3, 1}, 0.5f, 2.0f, &gen);   // broadcasts
  // Commutativity and associativity (within float tolerance).
  EXPECT_TRUE(tx::allclose(tx::add(a, b), tx::add(b, a)));
  EXPECT_TRUE(tx::allclose(tx::mul(a, b), tx::mul(b, a)));
  EXPECT_TRUE(tx::allclose(tx::add(tx::add(a, b), c), tx::add(a, tx::add(b, c)),
                           1e-5f));
  // Distributivity.
  EXPECT_TRUE(tx::allclose(tx::mul(a, tx::add(b, c)),
                           tx::add(tx::mul(a, b), tx::mul(a, c)), 1e-4f));
  // a / b == a * (1 / b).
  EXPECT_TRUE(tx::allclose(tx::div(a, b),
                           tx::mul(a, tx::div(Tensor::scalar(1.0f), b)), 1e-5f));
}

TEST_P(SeededProperty, ReductionLinearity) {
  Tensor a = tx::randn({4, 5}, &gen);
  Tensor b = tx::randn({4, 5}, &gen);
  EXPECT_NEAR(tx::sum(tx::add(a, b)).item(),
              tx::sum(a).item() + tx::sum(b).item(), 1e-3);
  // sum over cat == sum of parts.
  EXPECT_NEAR(tx::sum(tx::cat({a, b}, 0)).item(),
              tx::sum(a).item() + tx::sum(b).item(), 1e-3);
  // mean of a constant is the constant.
  EXPECT_NEAR(tx::mean(tx::full({7, 2}, 3.25f)).item(), 3.25f, 1e-6);
  // sum over both axes equals full sum regardless of order.
  EXPECT_NEAR(tx::sum(tx::sum(a, {0}), {0}).item(), tx::sum(a).item(), 1e-3);
}

TEST_P(SeededProperty, ShapeRoundTrips) {
  Tensor a = tx::randn({2, 3, 4}, &gen);
  EXPECT_TRUE(tx::allclose(tx::reshape(tx::reshape(a, {6, 4}), {2, 3, 4}), a));
  Tensor p = tx::permute(a, {2, 0, 1});
  EXPECT_TRUE(tx::allclose(tx::permute(p, {1, 2, 0}), a));
  EXPECT_TRUE(tx::allclose(tx::transpose(tx::transpose(a, 0, 2), 0, 2), a));
  // cat of slices reassembles the original.
  Tensor left = tx::slice(a, 1, 0, 2);
  Tensor right = tx::slice(a, 1, 2, 3);
  EXPECT_TRUE(tx::allclose(tx::cat({left, right}, 1), a));
}

TEST_P(SeededProperty, SoftmaxShiftInvariance) {
  Tensor a = tx::randn({3, 6}, &gen);
  Tensor shifted = tx::add(a, Tensor::scalar(37.5f));
  EXPECT_TRUE(tx::allclose(tx::softmax(a, -1), tx::softmax(shifted, -1), 1e-5f));
  // logsumexp(a + c) == logsumexp(a) + c.
  Tensor lse = tx::logsumexp(a, -1);
  Tensor lse_shifted = tx::logsumexp(shifted, -1);
  EXPECT_TRUE(tx::allclose(tx::add(lse, Tensor::scalar(37.5f)), lse_shifted,
                           1e-3f, 1e-4f));
}

TEST_P(SeededProperty, MatmulLinearity) {
  Tensor a = tx::randn({3, 4}, &gen);
  Tensor b = tx::randn({4, 2}, &gen);
  Tensor c = tx::randn({4, 2}, &gen);
  EXPECT_TRUE(tx::allclose(tx::matmul(a, tx::add(b, c)),
                           tx::add(tx::matmul(a, b), tx::matmul(a, c)), 1e-4f));
  // (A B)^T == B^T A^T.
  EXPECT_TRUE(tx::allclose(tx::transpose(tx::matmul(a, b), 0, 1),
                           tx::matmul(tx::transpose(b, 0, 1),
                                      tx::transpose(a, 0, 1)),
                           1e-4f));
}

TEST_P(SeededProperty, NormalLocationScaleInvariances) {
  const float mu = static_cast<float>(gen.uniform(-2.0, 2.0));
  const float sigma = static_cast<float>(gen.uniform(0.3, 2.0));
  const float shift = static_cast<float>(gen.uniform(-3.0, 3.0));
  nd::Normal p(mu, sigma), q(mu + 1.0f, sigma * 1.5f);
  nd::Normal ps(mu + shift, sigma), qs(mu + 1.0f + shift, sigma * 1.5f);
  // KL is invariant under a common location shift.
  EXPECT_NEAR(nd::kl_divergence(p, q).item(), nd::kl_divergence(ps, qs).item(),
              1e-4);
  // Density transforms correctly: log N(x; mu, s) == log N(x+c; mu+c, s).
  const float x = static_cast<float>(gen.uniform(-2.0, 2.0));
  EXPECT_NEAR(p.log_prob(Tensor::scalar(x)).item(),
              ps.log_prob(Tensor::scalar(x + shift)).item(), 1e-5);
}

TEST_P(SeededProperty, ReplayIsIdempotent) {
  auto program = [&] {
    Tensor z = tx::ppl::sample("z", std::make_shared<nd::Normal>(0.0f, 1.0f));
    tx::ppl::sample("w", std::make_shared<nd::Normal>(z, Tensor::scalar(0.5f)));
  };
  tx::ppl::Trace first = tx::ppl::trace_fn(program);
  // Replaying twice reproduces exactly the same trace (values + log prob).
  tx::ppl::ReplayMessenger replay(first);
  tx::ppl::Trace second;
  {
    tx::ppl::HandlerScope s(replay);
    second = tx::ppl::trace_fn(program);
  }
  tx::ppl::ReplayMessenger replay2(second);
  tx::ppl::Trace third;
  {
    tx::ppl::HandlerScope s(replay2);
    third = tx::ppl::trace_fn(program);
  }
  EXPECT_TRUE(tx::allclose(first.at("z").value, third.at("z").value));
  EXPECT_TRUE(tx::allclose(first.at("w").value, third.at("w").value));
  EXPECT_NEAR(first.log_prob_sum().item(), third.log_prob_sum().item(), 1e-5);
}

TEST_P(SeededProperty, ElboAtExactPosteriorEqualsLogEvidence) {
  // Conjugate model: z ~ N(0,1), x | z ~ N(z, s). With the guide set to the
  // exact posterior, ELBO == log evidence = log N(x; 0, sqrt(1 + s^2)),
  // for every x and s — and it is an upper bound for any other guide.
  const float s = static_cast<float>(gen.uniform(0.3, 1.5));
  const float x = static_cast<float>(gen.uniform(-2.0, 2.0));
  auto model = [s, x] {
    Tensor z = tx::ppl::sample("z", std::make_shared<nd::Normal>(0.0f, 1.0f));
    tx::ppl::sample("x", std::make_shared<nd::Normal>(z, Tensor::scalar(s)),
                    Tensor::scalar(x));
  };
  const float post_var = 1.0f / (1.0f + 1.0f / (s * s));
  const float post_mean = post_var * x / (s * s);
  auto exact_guide = [post_mean, post_var] {
    tx::ppl::sample("z", std::make_shared<nd::Normal>(
                             post_mean, std::sqrt(post_var)));
  };
  const float log_evidence =
      nd::Normal(0.0f, std::sqrt(1.0f + s * s)).log_prob(Tensor::scalar(x)).item();

  // The KL term is analytic but the likelihood term is a single-sample Monte
  // Carlo estimate, so average over repeated evaluations.
  tx::infer::TraceMeanFieldELBO elbo;
  auto mean_elbo = [&](const tx::infer::Program& g) {
    double total = 0.0;
    const int kReps = 2000;
    for (int i = 0; i < kReps; ++i) {
      total += -elbo.differentiable_loss(model, g).item();
    }
    return total / kReps;
  };
  const double elbo_value = mean_elbo(exact_guide);
  EXPECT_NEAR(elbo_value, log_evidence, 0.02);

  // Any mismatched guide gives a strictly smaller ELBO (gap is
  // KL(q_wrong || posterior) = 0.5 * 0.5^2 / post_var >> the MC noise).
  auto wrong_guide = [post_mean, post_var] {
    tx::ppl::sample("z", std::make_shared<nd::Normal>(
                             post_mean + 0.5f, std::sqrt(post_var)));
  };
  EXPECT_LT(mean_elbo(wrong_guide), elbo_value - 0.02);
}

TEST_P(SeededProperty, GuideTraceLogProbMatchesAnalyticEntropyTerm) {
  // For a Normal guide, E[log q(z)] at its own samples averages to -H(q).
  const float sigma = static_cast<float>(gen.uniform(0.5, 1.5));
  nd::Normal q(0.0f, sigma);
  double acc = 0.0;
  const int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    acc += q.log_prob(q.sample(&gen)).item();
  }
  EXPECT_NEAR(acc / kSamples, -q.entropy().item(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
