// Tests for the Chrome-trace recorder (obs/trace.h), tensor memory
// accounting (obs/mem.h), and the span-path propagation into tx::par
// workers, including a python round-trip against validate_bench.py when a
// python3 interpreter is available.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "par/pool.h"
#include "tensor/tensor.h"

namespace tx {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::registry().clear();
    obs::stop_tracing();
    obs::clear_trace();
  }
  void TearDown() override {
    obs::stop_tracing();
    obs::clear_trace();
    obs::set_enabled(true);
    obs::registry().clear();
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST_F(TraceTest, OffByDefaultAndEmissionIsGated) {
  EXPECT_FALSE(obs::tracing());
  obs::trace_begin("ignored");
  obs::trace_end("ignored");
  obs::trace_instant("ignored");
  obs::trace_counter("ignored", 1.0);
  EXPECT_EQ(obs::trace_event_count(), 0);
}

TEST_F(TraceTest, RecordsAndExportsSlices) {
  obs::start_tracing();
  obs::set_trace_thread_name("main");
  {
    obs::TraceSpan outer("outer");
    obs::TraceSpan inner("inner");
    obs::trace_instant("tick");
    obs::trace_counter("gauge", 2.5);
  }
  obs::stop_tracing();
  EXPECT_EQ(obs::trace_event_count(), 6);  // 2 B + 2 E + i + C

  const std::string path = temp_path("trace_slices.json");
  ASSERT_TRUE(obs::write_trace(path));
  const std::string text = read_file(path);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"main\""), std::string::npos);
  EXPECT_NE(text.find("\"tx.trace.v1\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, BalancesOrphanedAndUnclosedEvents) {
  obs::start_tracing();
  obs::trace_end("orphan");     // B lost (simulates ring wrap): dropped
  obs::trace_begin("unclosed"); // still open at export: synthetic close
  obs::stop_tracing();

  const std::string path = temp_path("trace_balance.json");
  ASSERT_TRUE(obs::write_trace(path));
  const std::string text = read_file(path);
  EXPECT_EQ(count_occurrences(text, "\"orphan\""), 0u);
  // One B plus one synthesized E.
  EXPECT_EQ(count_occurrences(text, "\"unclosed\""), 2u);
  std::remove(path.c_str());
}

TEST_F(TraceTest, ConcurrentSlicesFromPoolThreads) {
  const int prev = par::num_threads();
  par::set_num_threads(8);
  obs::start_tracing();
  constexpr std::int64_t kItems = 256;
  par::parallel_for(0, kItems, 1, [](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      obs::TraceSpan span("work_item");
      obs::trace_instant("work_tick");
    }
  });
  obs::stop_tracing();
  par::set_num_threads(prev);

  // Every item emitted one B + one E + one instant, with no loss across the
  // 8 racing threads (plus par.chunk slices from the pool itself).
  const std::string path = temp_path("trace_mt.json");
  ASSERT_TRUE(obs::write_trace(path));
  const std::string text = read_file(path);
  EXPECT_EQ(count_occurrences(text, "\"work_item\""),
            static_cast<std::size_t>(2 * kItems));
  EXPECT_EQ(count_occurrences(text, "\"work_tick\""),
            static_cast<std::size_t>(kItems));
  // Worker threads appear as named tracks.
  EXPECT_NE(text.find("\"par-worker-1\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, StartTracingClearsPreviousEvents) {
  obs::start_tracing();
  obs::trace_instant("first_run");
  obs::stop_tracing();
  EXPECT_GT(obs::trace_event_count(), 0);
  obs::start_tracing();
  obs::stop_tracing();
  EXPECT_EQ(obs::trace_event_count(), 0);
}

TEST_F(TraceTest, WriteTraceFailureCountsSinkError) {
  obs::start_tracing();
  obs::trace_instant("x");
  obs::stop_tracing();
  const std::int64_t before =
      obs::registry().counter("obs.sink_errors").value();
  EXPECT_FALSE(obs::write_trace("/nonexistent-dir/trace.json"));
  EXPECT_EQ(obs::registry().counter("obs.sink_errors").value(), before + 1);
}

TEST_F(TraceTest, ScopedTimerDoublesAsTraceSlice) {
  obs::start_tracing();
  {
    obs::ScopedTimer outer("fit");
    obs::ScopedTimer inner("step");
  }
  obs::stop_tracing();
  const std::string path = temp_path("trace_timer.json");
  ASSERT_TRUE(obs::write_trace(path));
  const std::string text = read_file(path);
  // Slices use the leaf name; histograms keep the full nested path.
  EXPECT_EQ(count_occurrences(text, "\"name\": \"fit\""), 2u);
  EXPECT_EQ(count_occurrences(text, "\"name\": \"step\""), 2u);
  // The slice end carries net allocation; live bytes tick as a counter.
  EXPECT_NE(text.find("\"net_bytes\""), std::string::npos);
  EXPECT_NE(text.find("\"mem.live_bytes\""), std::string::npos);
  auto hists = obs::registry().histograms();
  EXPECT_EQ(hists.count("span.fit/step"), 1u);
  EXPECT_EQ(hists.count("mem.span.fit/step"), 1u);
  std::remove(path.c_str());
}

TEST_F(TraceTest, TraceArgsAttachToSlice) {
  obs::start_tracing();
  { obs::TraceSpan s("op", obs::Event().set("m", 32).set("flops", 1024).to_json()); }
  obs::stop_tracing();
  const std::string path = temp_path("trace_args.json");
  ASSERT_TRUE(obs::write_trace(path));
  const std::string text = read_file(path);
  EXPECT_NE(text.find("\"flops\": 1024"), std::string::npos);
  std::remove(path.c_str());
}

// ---- span-path propagation into workers (the PR's bugfix) ------------------

TEST_F(TraceTest, SpanPathPropagatesIntoPoolWorkers) {
  const int prev = par::num_threads();
  par::set_num_threads(4);
  {
    obs::ScopedTimer outer("outer_fit");
    par::parallel_for(0, 64, 1, [](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        obs::ScopedTimer inner("worker_op");
        (void)inner;
      }
    });
  }
  par::set_num_threads(prev);
  // Worker-side spans must nest under the submitter's path, not start a
  // fresh root — on every thread that ran a chunk.
  auto hists = obs::registry().histograms();
  EXPECT_EQ(hists.count("span.outer_fit/worker_op"), 1u);
  EXPECT_EQ(hists.count("span.worker_op"), 0u);
  EXPECT_EQ(hists.at("span.outer_fit/worker_op").count, 64);
}

TEST_F(TraceTest, SpanBaseRestoredAfterJob) {
  const int prev = par::num_threads();
  par::set_num_threads(2);
  {
    obs::ScopedTimer outer("job_a");
    par::parallel_for(0, 8, 1, [](std::int64_t, std::int64_t) {});
  }
  // A second job with no open span must not inherit job_a's stale base.
  par::parallel_for(0, 8, 1, [](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) obs::ScopedTimer t("rootless");
  });
  par::set_num_threads(prev);
  auto hists = obs::registry().histograms();
  EXPECT_EQ(hists.count("span.rootless"), 1u);
  EXPECT_EQ(hists.count("span.job_a/rootless"), 0u);
}

// ---- memory accounting -----------------------------------------------------

TEST_F(TraceTest, MemAccountingTracksLiveAndPeak) {
  const std::int64_t tensors0 = obs::mem::live_tensors();
  const std::int64_t bytes0 = obs::mem::live_bytes();
  obs::mem::reset_peak();
  {
    Tensor t(Shape{1024});
    EXPECT_EQ(obs::mem::live_tensors(), tensors0 + 1);
    EXPECT_GE(obs::mem::live_bytes(), bytes0 + 4096);
    EXPECT_GE(obs::mem::peak_bytes(), bytes0 + 4096);
  }
  EXPECT_EQ(obs::mem::live_tensors(), tensors0);
  EXPECT_EQ(obs::mem::live_bytes(), bytes0);
  // The high-water mark survives the free.
  EXPECT_GE(obs::mem::peak_bytes(), bytes0 + 4096);
}

TEST_F(TraceTest, MemAccountingCoversGradBuffers) {
  const std::int64_t bytes0 = obs::mem::live_bytes();
  Tensor w(Shape{256});
  w.set_requires_grad(true);
  const std::int64_t after_data = obs::mem::live_bytes();
  EXPECT_GE(after_data, bytes0 + 1024);
  sum(square(w)).backward();
  EXPECT_GE(obs::mem::live_bytes(), after_data + 1024);  // grad buffer live
  w.zero_grad();
  EXPECT_LT(obs::mem::live_bytes(), after_data + 1024);  // released
}

TEST_F(TraceTest, MemHighWaterUnderChurn) {
  obs::mem::reset_peak();
  const std::int64_t base = obs::mem::live_bytes();
  for (int i = 0; i < 8; ++i) {
    Tensor big(Shape{64, 64});  // 16 KiB each, freed every iteration
  }
  EXPECT_EQ(obs::mem::live_bytes(), base);
  EXPECT_GE(obs::mem::peak_bytes(), base + 16384);
  // Peak reflects one-at-a-time churn, not the sum of all eight.
  EXPECT_LT(obs::mem::peak_bytes(), base + 8 * 16384);
}

TEST_F(TraceTest, SnapshotCarriesMemGauges) {
  Tensor keep(Shape{128});
  const std::string path = temp_path("trace_snapshot.json");
  ASSERT_TRUE(obs::EventSink::write_snapshot(path, "trace_test"));
  const std::string text = read_file(path);
  EXPECT_NE(text.find("\"mem.live_tensors\""), std::string::npos);
  EXPECT_NE(text.find("\"mem.live_bytes\""), std::string::npos);
  EXPECT_NE(text.find("\"mem.peak_bytes\""), std::string::npos);
  EXPECT_NE(text.find("\"mem.total_allocated_bytes\""), std::string::npos);
  std::remove(path.c_str());
}

// ---- bench flag parsing ----------------------------------------------------

TEST_F(TraceTest, TracePathFromArgsPrefersFlag) {
  const char* argv[] = {"bench", "--trace", "out.json", nullptr};
  EXPECT_EQ(obs::trace_path_from_args(3, const_cast<char**>(argv)),
            "out.json");
  const char* bare[] = {"bench", nullptr};
  ::setenv("TYXE_TRACE", "env.json", 1);
  EXPECT_EQ(obs::trace_path_from_args(1, const_cast<char**>(bare)),
            "env.json");
  ::unsetenv("TYXE_TRACE");
  EXPECT_EQ(obs::trace_path_from_args(1, const_cast<char**>(bare)), "");
  // A trailing --trace with no value falls through to the env/default.
  const char* trailing[] = {"bench", "--trace", nullptr};
  EXPECT_EQ(obs::trace_path_from_args(2, const_cast<char**>(trailing)), "");
}

// ---- round-trip through the python validator -------------------------------

TEST_F(TraceTest, ExportedTracePassesPythonValidator) {
  if (std::system("python3 -c 'import json' >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  const int prev = par::num_threads();
  par::set_num_threads(4);
  obs::start_tracing();
  obs::set_trace_thread_name("main");
  {
    obs::ScopedTimer fit("roundtrip_fit");
    Tensor a = randn(Shape{96, 96});
    Tensor b = randn(Shape{96, 96});
    par::parallel_for(0, 32, 1, [](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) obs::TraceSpan s("rt_item");
    });
    (void)matmul(a, b);
    obs::trace_counter("mem.live_bytes",
                       static_cast<double>(obs::mem::live_bytes()));
  }
  obs::stop_tracing();
  par::set_num_threads(prev);

  const std::string path = temp_path("trace_roundtrip.trace.json");
  ASSERT_TRUE(obs::write_trace(path));
  const std::string cmd = std::string("python3 ") + TX_SOURCE_DIR +
                          "/scripts/validate_bench.py --trace " + path +
                          " >/dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "validate_bench.py rejected "
                                         << path;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tx
