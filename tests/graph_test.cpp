// Tests for the graph substrate: normalization, spmm (values and gradient),
// the SBM generator, and GCN training above chance.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/gcn.h"
#include "graph/graph.h"
#include "tensor/grad_check.h"

namespace tx::graph {
namespace {

TEST(Graph, NormalizedAdjacencyRowsAreCorrect) {
  // Path graph 0-1-2 with self-loops: degrees {2, 3, 2}.
  Graph g(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  // Row 0 has entries for {0, 1}: 1/2 and 1/sqrt(6).
  const auto& rows = g.row_offsets();
  const auto& cols = g.col_indices();
  const auto& vals = g.values();
  EXPECT_EQ(rows[1] - rows[0], 2);
  EXPECT_EQ(cols[0], 0);
  EXPECT_NEAR(vals[0], 0.5f, 1e-6);
  EXPECT_NEAR(vals[1], 1.0f / std::sqrt(6.0f), 1e-6);
}

TEST(Graph, DuplicateAndSelfEdgesIgnored) {
  Graph g(2, {{0, 1}, {1, 0}, {0, 0}});
  // Both nodes have degree 2 (self-loop + one edge).
  const auto& rows = g.row_offsets();
  EXPECT_EQ(rows[1] - rows[0], 2);
  EXPECT_EQ(rows[2] - rows[1], 2);
}

TEST(Graph, EdgeOutOfRangeThrows) {
  EXPECT_THROW(Graph(2, {{0, 5}}), Error);
}

TEST(Spmm, MatchesDenseProduct) {
  Graph g(3, {{0, 1}, {1, 2}});
  Generator gen(1);
  Tensor x = randn({3, 4}, &gen);
  Tensor y = spmm(g, x);
  // Build the dense normalized adjacency and compare.
  Tensor dense = zeros({3, 3});
  const auto& rows = g.row_offsets();
  const auto& cols = g.col_indices();
  const auto& vals = g.values();
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t k = rows[static_cast<std::size_t>(i)];
         k < rows[static_cast<std::size_t>(i) + 1]; ++k) {
      dense.at(i * 3 + cols[static_cast<std::size_t>(k)]) =
          vals[static_cast<std::size_t>(k)];
    }
  }
  EXPECT_TRUE(allclose(y, matmul(dense, x), 1e-5f));
}

TEST(Spmm, GradientMatchesFiniteDifferences) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  Generator gen(2);
  Tensor x = rand_uniform({4, 3}, -1.0f, 1.0f, &gen);
  EXPECT_TRUE(grad_check(
      [&g](const std::vector<Tensor>& in) {
        return sum(square(spmm(g, in[0])));
      },
      {x}));
}

TEST(Spmm, RegularGraphPreservesConstants) {
  // On a regular graph (4-cycle, every degree 3 with self-loops) symmetric
  // normalization makes each row sum to exactly 1, so Â preserves constants.
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  Tensor ones_in = ones({4, 1});
  Tensor out = spmm(g, ones_in);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(out.at(i), 1.0f, 1e-5f);
  }
}

TEST(Sbm, GeneratesHomophilousGraphWithSplit) {
  Generator gen(3);
  SbmConfig cfg;
  cfg.num_nodes = 350;
  cfg.num_classes = 7;
  cfg.num_val = 50;
  cfg.num_test = 100;
  auto data = make_sbm_citation(cfg, gen);
  EXPECT_EQ(data.graph.num_nodes(), 350);
  EXPECT_EQ(data.features.shape(), (Shape{350, cfg.num_features}));
  EXPECT_EQ(static_cast<std::int64_t>(data.train_idx.size()),
            7 * cfg.train_per_class);
  EXPECT_EQ(data.val_idx.size(), 50u);
  EXPECT_EQ(data.test_idx.size(), 100u);
  // Intra-class edges dominate: homophily well above chance (1/7).
  EXPECT_GT(data.graph.homophily(data.labels), 0.5);
  // Train mask marks exactly the train nodes.
  Tensor mask = data.train_mask();
  double total = 0;
  for (std::int64_t i = 0; i < mask.numel(); ++i) total += mask.at(i);
  EXPECT_EQ(static_cast<std::int64_t>(total), 7 * cfg.train_per_class);
}

TEST(Sbm, SplitsAreDisjoint) {
  Generator gen(4);
  SbmConfig cfg;
  cfg.num_nodes = 250;
  cfg.num_val = 40;
  cfg.num_test = 60;
  auto data = make_sbm_citation(cfg, gen);
  std::set<std::int64_t> seen;
  for (auto i : data.train_idx) EXPECT_TRUE(seen.insert(i).second);
  for (auto i : data.val_idx) EXPECT_TRUE(seen.insert(i).second);
  for (auto i : data.test_idx) EXPECT_TRUE(seen.insert(i).second);
}

TEST(Gcn, ForwardShapesAndParamNames) {
  Generator gen(5);
  Graph g(6, {{0, 1}, {2, 3}, {4, 5}});
  GCN gcn(&g, 8, 4, 3, &gen);
  Tensor x = randn({6, 8}, &gen);
  EXPECT_EQ(gcn.forward(x).shape(), (Shape{6, 3}));
  auto slots = gcn.named_parameter_slots();
  ASSERT_EQ(slots.size(), 4u);
  EXPECT_EQ(slots[0].name, "gcn_layer1.linear.weight");
  EXPECT_EQ(slots[2].name, "gcn_layer2.linear.weight");
  // GCNLayer advertises a Linear inside, so flipout interception applies.
  bool found_linear = false;
  for (auto& [path, m] : gcn.named_modules()) {
    if (m->type_name() == "Linear") found_linear = true;
  }
  EXPECT_TRUE(found_linear);
}

TEST(Gcn, TrainsAboveChanceOnSbm) {
  Generator gen(6);
  SbmConfig cfg;
  cfg.num_nodes = 210;
  cfg.num_classes = 3;
  cfg.num_features = 16;
  cfg.p_intra = 0.05;
  cfg.p_inter = 0.005;
  cfg.train_per_class = 10;
  cfg.num_val = 30;
  cfg.num_test = 90;
  auto data = make_sbm_citation(cfg, gen);
  GCN gcn(&data.graph, cfg.num_features, 16, cfg.num_classes, &gen);
  // Plain cross-entropy training on the labelled nodes.
  Tensor train_labels = data.labels_at(data.train_idx);
  for (int step = 0; step < 150; ++step) {
    for (auto& s : gcn.named_parameter_slots()) s.slot->zero_grad();
    Tensor logits = gcn.forward(data.features);
    Tensor train_logits = index_select(logits, 0, data.train_idx);
    Tensor loss = neg(mean(gather_last(log_softmax(train_logits, -1),
                                       train_labels)));
    loss.backward();
    for (auto& s : gcn.named_parameter_slots()) {
      s.slot->add_(s.slot->grad(), -0.1f);
    }
  }
  // Test accuracy must beat chance (1/3) comfortably.
  Tensor logits = gcn.forward(data.features);
  Tensor test_logits = index_select(logits, 0, data.test_idx);
  Tensor preds = argmax(test_logits, -1);
  Tensor test_labels = data.labels_at(data.test_idx);
  double correct = 0;
  for (std::int64_t i = 0; i < preds.numel(); ++i) {
    if (preds.at(i) == test_labels.at(i)) ++correct;
  }
  EXPECT_GT(correct / static_cast<double>(preds.numel()), 0.6);
}

}  // namespace
}  // namespace tx::graph
