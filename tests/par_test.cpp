// tx::par tests: chunking purity, coverage, exception propagation, nested
// parallelism, thread-local context propagation into workers, and the
// bitwise-determinism contract — matmul/conv/elementwise/reduction kernels,
// multi-particle ELBO, and multi-chain MCMC must produce identical bits at
// TYXE_NUM_THREADS 1, 2, and 8.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dist/distributions.h"
#include "infer/infer.h"
#include "nn/functional.h"
#include "par/par.h"
#include "ppl/ppl.h"

namespace tx {
namespace {

using dist::Normal;
using infer::HMC;
using infer::MCMC;
using infer::Program;
using infer::TraceELBO;

/// Runs `fn` (returning a flat float/double vector) at several thread counts
/// and checks the results are bitwise identical.
template <typename Fn>
void expect_same_bits_across_threads(Fn fn) {
  par::set_num_threads(1);
  const auto reference = fn();
  for (int n : {2, 8}) {
    par::set_num_threads(n);
    const auto got = fn();
    ASSERT_EQ(got.size(), reference.size()) << "at " << n << " threads";
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], reference[i])
          << "element " << i << " differs at " << n << " threads";
    }
  }
  par::set_num_threads(1);
}

TEST(ParPool, ChunkBoundsPartitionTheRange) {
  for (std::int64_t range : {1, 2, 7, 64, 1000}) {
    for (std::int64_t chunks : {1, 2, 3, 8, 32}) {
      std::int64_t covered = 0;
      std::int64_t prev_end = 0;
      for (std::int64_t c = 0; c < chunks; ++c) {
        const auto [b, e] = par::chunk_bounds(range, chunks, c);
        EXPECT_EQ(b, prev_end);
        EXPECT_LE(b, e);
        EXPECT_LE(e, range);
        covered += e - b;
        prev_end = e;
      }
      EXPECT_EQ(covered, range);
      EXPECT_EQ(prev_end, range);
    }
  }
}

TEST(ParPool, ChunkCountIsPureAndCapped) {
  // ceil(range/grain) below the cap, 4*nthreads above it, never < 1.
  EXPECT_EQ(par::chunk_count(100, 10, 8), 10);
  EXPECT_EQ(par::chunk_count(101, 10, 8), 11);
  EXPECT_EQ(par::chunk_count(100000, 1, 8), 32);
  EXPECT_EQ(par::chunk_count(100000, 1, 2), 8);
  EXPECT_EQ(par::chunk_count(5, 100, 8), 1);
  EXPECT_EQ(par::chunk_count(0, 1, 8), 0);
  // Same inputs, same answer — scheduling never enters the function.
  EXPECT_EQ(par::chunk_count(12345, 7, 4), par::chunk_count(12345, 7, 4));
}

TEST(ParPool, ParallelForCoversEveryIndexOnce) {
  par::set_num_threads(8);
  const std::int64_t n = 1000;
  std::vector<int> hits(static_cast<std::size_t>(n), 0);
  par::parallel_for(0, n, 7, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  par::set_num_threads(1);
}

TEST(ParPool, OffsetRangesKeepAbsoluteIndices) {
  par::set_num_threads(4);
  std::vector<int> hits(10, 0);
  par::parallel_for(90, 100, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      ASSERT_GE(i, 90);
      ASSERT_LT(i, 100);
      hits[static_cast<std::size_t>(i - 90)]++;
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  par::set_num_threads(1);
}

TEST(ParPool, ExceptionsPropagateToCaller) {
  par::set_num_threads(4);
  EXPECT_THROW(
      par::parallel_for(0, 100, 1,
                        [&](std::int64_t b, std::int64_t) {
                          if (b >= 50) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a failed job.
  std::atomic<std::int64_t> total{0};
  par::parallel_for(0, 64, 1, [&](std::int64_t b, std::int64_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 64);
  par::set_num_threads(1);
}

TEST(ParPool, NestedParallelForRunsInlineWithoutDeadlock) {
  par::set_num_threads(4);
  std::vector<int> hits(64 * 64, 0);
  par::parallel_for(0, 64, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      par::parallel_for(0, 64, 1, [&, i](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t j = ib; j < ie; ++j) {
          hits[static_cast<std::size_t>(i * 64 + j)]++;
        }
      });
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  par::set_num_threads(1);
}

TEST(ParPool, SingleThreadRunsInlineOnCaller) {
  par::set_num_threads(1);
  int calls = 0;
  par::parallel_for(0, 1000, 1, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 1000);
    EXPECT_FALSE(par::in_worker());
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParPool, ParallelReduceIsThreadCountInvariant) {
  expect_same_bits_across_threads([] {
    const double total = par::parallel_reduce(
        0, 100000, 256, [](std::int64_t b, std::int64_t e) {
          double s = 0.0;
          for (std::int64_t i = b; i < e; ++i) {
            s += std::sin(static_cast<double>(i)) * 1e-3;
          }
          return s;
        });
    return std::vector<double>{total};
  });
}

TEST(ParPool, RunTasksRunsEveryTaskOnce) {
  par::set_num_threads(4);
  std::vector<int> ran(16, 0);
  std::vector<std::function<void()>> tasks;
  for (int t = 0; t < 16; ++t) {
    tasks.push_back([&ran, t] { ran[static_cast<std::size_t>(t)]++; });
  }
  par::run_tasks(tasks);
  for (int r : ran) EXPECT_EQ(r, 1);
  par::set_num_threads(1);
}

/// Spin until both of a two-chunk job's bodies have started, so at least one
/// provably runs on a pool worker while the caller is busy in the other.
struct TwoChunkBarrier {
  std::atomic<int> started{0};
  void arrive_and_wait() {
    started.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (started.load() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  }
};

TEST(ParContext, HandlerStackVisibleInsideWorkers) {
  par::set_num_threads(4);
  ppl::ScaleMessenger scale(2.0);
  ppl::HandlerScope scope(scale);
  ASSERT_EQ(ppl::handler_depth(), 1u);
  TwoChunkBarrier barrier;
  std::size_t depths[2] = {999, 999};
  bool on_worker[2] = {false, false};
  par::parallel_for(0, 2, 1, [&](std::int64_t b, std::int64_t) {
    barrier.arrive_and_wait();
    depths[b] = ppl::handler_depth();
    on_worker[b] = par::in_worker();
  });
  EXPECT_EQ(depths[0], 1u);
  EXPECT_EQ(depths[1], 1u);
  EXPECT_TRUE(on_worker[0] || on_worker[1]);
  // The worker's own stack is restored after the job.
  EXPECT_EQ(ppl::handler_depth(), 1u);
  par::set_num_threads(1);
}

TEST(ParContext, InterceptorStackVisibleInsideWorkers) {
  struct Marker : nn::functional::LinearOpInterceptor {
    Tensor linear(const Tensor&, const Tensor&, const Tensor&) override {
      return Tensor();
    }
    Tensor conv2d(const Tensor&, const Tensor&, const Tensor&, std::int64_t,
                  std::int64_t) override {
      return Tensor();
    }
  };
  par::set_num_threads(4);
  Marker marker;
  nn::functional::push_interceptor(&marker);
  TwoChunkBarrier barrier;
  std::size_t depths[2] = {999, 999};
  par::parallel_for(0, 2, 1, [&](std::int64_t b, std::int64_t) {
    barrier.arrive_and_wait();
    depths[b] = nn::functional::interceptor_depth();
  });
  nn::functional::pop_interceptor(&marker);
  EXPECT_EQ(depths[0], 1u);
  EXPECT_EQ(depths[1], 1u);
  EXPECT_EQ(nn::functional::interceptor_depth(), 0u);
  par::set_num_threads(1);
}

TEST(ParContext, GradModeVisibleInsideWorkers) {
  par::set_num_threads(4);
  NoGradGuard ng;
  ASSERT_FALSE(grad_enabled());
  TwoChunkBarrier barrier;
  bool grad_seen[2] = {true, true};
  par::parallel_for(0, 2, 1, [&](std::int64_t b, std::int64_t) {
    barrier.arrive_and_wait();
    grad_seen[b] = grad_enabled();
  });
  EXPECT_FALSE(grad_seen[0]);
  EXPECT_FALSE(grad_seen[1]);
  par::set_num_threads(1);
}

TEST(ParDeterminism, MatmulForwardAndGradients) {
  Generator gen(21);
  const Tensor a0 = randn(Shape{96, 80}, &gen);
  const Tensor b0 = randn(Shape{80, 72}, &gen);
  expect_same_bits_across_threads([&] {
    Tensor a = a0.detach().set_requires_grad(true);
    Tensor b = b0.detach().set_requires_grad(true);
    Tensor y = matmul(a, b);
    sum(y).backward();
    std::vector<float> out = y.to_vector();
    const auto ga = a.grad().to_vector();
    const auto gb = b.grad().to_vector();
    out.insert(out.end(), ga.begin(), ga.end());
    out.insert(out.end(), gb.begin(), gb.end());
    return out;
  });
}

TEST(ParDeterminism, BmmForwardAndGradients) {
  Generator gen(22);
  const Tensor a0 = randn(Shape{12, 24, 20}, &gen);
  const Tensor b0 = randn(Shape{12, 20, 16}, &gen);
  expect_same_bits_across_threads([&] {
    Tensor a = a0.detach().set_requires_grad(true);
    Tensor b = b0.detach().set_requires_grad(true);
    Tensor y = bmm(a, b);
    sum(y).backward();
    std::vector<float> out = y.to_vector();
    const auto ga = a.grad().to_vector();
    const auto gb = b.grad().to_vector();
    out.insert(out.end(), ga.begin(), ga.end());
    out.insert(out.end(), gb.begin(), gb.end());
    return out;
  });
}

TEST(ParDeterminism, Conv2dForwardAndGradients) {
  Generator gen(23);
  const Tensor x0 = randn(Shape{4, 3, 12, 12}, &gen);
  const Tensor w0 = randn(Shape{8, 3, 3, 3}, &gen);
  const Tensor c0 = randn(Shape{8}, &gen);
  expect_same_bits_across_threads([&] {
    Tensor x = x0.detach().set_requires_grad(true);
    Tensor w = w0.detach().set_requires_grad(true);
    Tensor c = c0.detach().set_requires_grad(true);
    Tensor y = conv2d(x, w, c, /*stride=*/1, /*padding=*/1);
    sum(y).backward();
    std::vector<float> out = y.to_vector();
    for (const Tensor& t : {x.grad(), w.grad(), c.grad()}) {
      const auto g = t.to_vector();
      out.insert(out.end(), g.begin(), g.end());
    }
    return out;
  });
}

TEST(ParDeterminism, ElementwiseOpsAboveThreshold) {
  Generator gen(24);
  const Tensor a0 = randn(Shape{200, 200}, &gen);  // 40k > 32k threshold
  const Tensor b0 = randn(Shape{200, 200}, &gen);
  expect_same_bits_across_threads([&] {
    Tensor a = a0.detach().set_requires_grad(true);
    Tensor y = mul(exp(mul(a, Tensor::scalar(0.1f))), add(a0, b0));
    sum(y).backward();
    std::vector<float> out = y.to_vector();
    const auto g = a.grad().to_vector();
    out.insert(out.end(), g.begin(), g.end());
    return out;
  });
}

TEST(ParDeterminism, AxisSumAboveThreshold) {
  Generator gen(25);
  const Tensor a0 = randn(Shape{64, 32, 32}, &gen);  // 65536 elements
  expect_same_bits_across_threads([&] {
    Tensor a = a0.detach().set_requires_grad(true);
    Tensor mid = sum(a, {1}, /*keepdim=*/false);     // reduce the middle axis
    Tensor tail = sum(a0, {1, 2}, /*keepdim=*/true); // multi-axis variant
    sum(mid).backward();
    std::vector<float> out = mid.to_vector();
    const auto t = tail.to_vector();
    const auto g = a.grad().to_vector();
    out.insert(out.end(), t.begin(), t.end());
    out.insert(out.end(), g.begin(), g.end());
    return out;
  });
}

TEST(ParDeterminism, MultiParticleElboLossAndGradients) {
  Tensor data(Shape{6}, {1.2f, 0.8f, 1.1f, 0.9f, 1.3f, 1.0f});
  Program model = [data] {
    Tensor z = ppl::sample("z", std::make_shared<Normal>(0.0f, 1.0f));
    ppl::sample("obs", std::make_shared<Normal>(z, Tensor::scalar(0.5f)),
                data);
  };
  expect_same_bits_across_threads([&] {
    manual_seed(7);
    ppl::ParamStore store;
    auto guide = std::make_shared<infer::AutoNormal>(
        model, infer::AutoNormalConfig{}, "g", &store);
    TraceELBO elbo(4);
    Tensor loss = elbo.differentiable_loss(model, [guide] { (*guide)(); });
    loss.backward();
    std::vector<float> out{loss.item()};
    for (const auto& [name, t] : store.items()) {
      const auto g = t.grad().to_vector();
      out.insert(out.end(), g.begin(), g.end());
    }
    return out;
  });
}

TEST(ParDeterminism, MultiChainMcmcDraws) {
  Program model = [] {
    Tensor a = ppl::sample("a", std::make_shared<Normal>(0.0f, 1.0f));
    ppl::sample("obs", std::make_shared<Normal>(a, Tensor::scalar(0.3f)),
                Tensor::scalar(0.8f));
  };
  expect_same_bits_across_threads([&] {
    Generator gen(99);
    MCMC mcmc([] { return std::make_shared<HMC>(0.15, 8); },
              /*num_samples=*/40, /*warmup_steps=*/30, /*num_chains=*/2);
    mcmc.run(model, &gen);
    std::vector<double> out = mcmc.coordinate_chain(0);
    out.push_back(mcmc.mean_accept_prob());
    out.push_back(static_cast<double>(mcmc.divergence_count()));
    return out;
  });
}

TEST(ParInfer, MultiChainAccessorsAndDiagnostics) {
  par::set_num_threads(2);
  Program model = [] {
    ppl::sample("z", std::make_shared<Normal>(0.0f, 1.0f));
  };
  Generator gen(55);
  MCMC mcmc([] { return std::make_shared<HMC>(0.2, 10); },
            /*num_samples=*/100, /*warmup_steps=*/50, /*num_chains=*/2);
  std::vector<std::int64_t> chains_seen;
  std::mutex mu;
  mcmc.run(model, &gen, [&](const infer::MCMCProgress& p) {
    std::lock_guard<std::mutex> lock(mu);
    chains_seen.push_back(p.chain);
  });
  EXPECT_EQ(mcmc.num_chains(), 2);
  EXPECT_EQ(mcmc.num_samples(), 200u);
  // Both chains reported progress.
  EXPECT_NE(std::count(chains_seen.begin(), chains_seen.end(), 0), 0);
  EXPECT_NE(std::count(chains_seen.begin(), chains_seen.end(), 1), 0);
  const auto c0 = mcmc.coordinate_chain(0, 0);
  const auto c1 = mcmc.coordinate_chain(0, 1);
  ASSERT_EQ(c0.size(), 100u);
  ASSERT_EQ(c1.size(), 100u);
  // Chains are independently seeded, not copies of each other.
  EXPECT_NE(c0, c1);
  // Concatenation order is chain 0 then chain 1.
  const auto all = mcmc.coordinate_chain(0);
  EXPECT_EQ(std::vector<double>(all.begin(), all.begin() + 100), c0);
  EXPECT_EQ(std::vector<double>(all.begin() + 100, all.end()), c1);
  // Multi-chain diagnostics accept the per-chain slices.
  const double rhat = infer::split_r_hat({c0, c1});
  EXPECT_GT(rhat, 0.8);
  EXPECT_LT(rhat, 1.5);
  EXPECT_GT(infer::effective_sample_size({c0, c1}), 0.0);
  par::set_num_threads(1);
}

TEST(ParInfer, SingleChainPathUnchangedByFactoryCtor) {
  Program model = [] {
    ppl::sample("z", std::make_shared<Normal>(0.0f, 1.0f));
  };
  const auto run_with = [&](MCMC&& mcmc) {
    Generator gen(77);
    mcmc.run(model, &gen);
    return mcmc.coordinate_chain(0);
  };
  auto kernel = std::make_shared<HMC>(0.2, 5);
  const auto direct = run_with(MCMC(kernel, 20, 10));
  const auto via_factory =
      run_with(MCMC([] { return std::make_shared<HMC>(0.2, 5); }, 20, 10, 1));
  EXPECT_EQ(direct, via_factory);
}

}  // namespace
}  // namespace tx
