// Tests for evaluation metrics: ECE, calibration curves, entropy, AUROC,
// empirical CDFs — with hand-checkable fixtures and property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.h"

namespace tx::metrics {
namespace {

TEST(Calibration, PerfectlyConfidentCorrectHasZeroEce) {
  Tensor probs(Shape{2, 2}, {1.0f, 0.0f, 0.0f, 1.0f});
  Tensor labels(Shape{2}, {0.0f, 1.0f});
  EXPECT_NEAR(expected_calibration_error(probs, labels), 0.0, 1e-6);
}

TEST(Calibration, ConfidentlyWrongHasEceNearOne) {
  Tensor probs(Shape{2, 2}, {1.0f, 0.0f, 0.0f, 1.0f});
  Tensor labels(Shape{2}, {1.0f, 0.0f});  // all wrong
  EXPECT_NEAR(expected_calibration_error(probs, labels), 1.0, 1e-3);
}

TEST(Calibration, KnownBinnedValue) {
  // Four predictions at confidence 0.8 with 50% accuracy: ECE = 0.3.
  Tensor probs(Shape{4, 2}, {0.8f, 0.2f, 0.8f, 0.2f, 0.8f, 0.2f, 0.8f, 0.2f});
  Tensor labels(Shape{4}, {0.0f, 0.0f, 1.0f, 1.0f});
  EXPECT_NEAR(expected_calibration_error(probs, labels, 10), 0.3, 1e-5);
}

TEST(Calibration, CurveBinsPopulateCorrectly) {
  Tensor probs(Shape{3, 2}, {0.95f, 0.05f, 0.55f, 0.45f, 0.65f, 0.35f});
  Tensor labels(Shape{3}, {0.0f, 0.0f, 1.0f});
  auto bins = calibration_curve(probs, labels, 10);
  ASSERT_EQ(bins.size(), 10u);
  EXPECT_EQ(bins[9].count, 1);            // 0.95
  EXPECT_EQ(bins[5].count, 1);            // 0.55
  EXPECT_EQ(bins[6].count, 1);            // 0.65
  EXPECT_NEAR(bins[9].accuracy, 1.0, 1e-9);
  EXPECT_NEAR(bins[6].accuracy, 0.0, 1e-9);  // predicted 0, label 1
  std::int64_t total = 0;
  for (const auto& b : bins) total += b.count;
  EXPECT_EQ(total, 3);
}

TEST(Metrics, AccuracyAndNll) {
  Tensor probs(Shape{2, 3}, {0.7f, 0.2f, 0.1f, 0.1f, 0.1f, 0.8f});
  Tensor labels(Shape{2}, {0.0f, 2.0f});
  EXPECT_NEAR(accuracy(probs, labels), 1.0, 1e-9);
  EXPECT_NEAR(nll(probs, labels),
              -(std::log(0.7) + std::log(0.8)) / 2.0, 1e-5);
  Tensor wrong_labels(Shape{2}, {1.0f, 2.0f});
  EXPECT_NEAR(accuracy(probs, wrong_labels), 0.5, 1e-9);
}

TEST(Metrics, EntropyExtremes) {
  Tensor uniform(Shape{1, 4}, {0.25f, 0.25f, 0.25f, 0.25f});
  Tensor peaked(Shape{1, 4}, {1.0f, 0.0f, 0.0f, 0.0f});
  EXPECT_NEAR(predictive_entropy(uniform)[0], std::log(4.0), 1e-5);
  EXPECT_NEAR(predictive_entropy(peaked)[0], 0.0, 1e-9);
}

TEST(Metrics, MaxProbability) {
  Tensor probs(Shape{2, 3}, {0.5f, 0.3f, 0.2f, 0.1f, 0.85f, 0.05f});
  auto mp = max_probability(probs);
  EXPECT_NEAR(mp[0], 0.5, 1e-6);
  EXPECT_NEAR(mp[1], 0.85, 1e-6);
}

TEST(Auroc, PerfectSeparation) {
  EXPECT_NEAR(auroc({0.9, 0.8, 0.7}, {0.3, 0.2, 0.1}), 1.0, 1e-9);
  EXPECT_NEAR(auroc({0.1, 0.2}, {0.8, 0.9}), 0.0, 1e-9);
}

TEST(Auroc, TiesAndOverlap) {
  // All equal scores: AUROC = 0.5 by tie convention.
  EXPECT_NEAR(auroc({0.5, 0.5}, {0.5, 0.5}), 0.5, 1e-9);
  // Hand-computable mix: pos {3, 1}, neg {2, 0}.
  // Pairs: (3>2),(3>0),(1<2),(1>0) -> 3/4.
  EXPECT_NEAR(auroc({3.0, 1.0}, {2.0, 0.0}), 0.75, 1e-9);
}

TEST(Auroc, RandomScoresNearHalf) {
  Generator gen(42);
  std::vector<double> a(2000), b(2000);
  for (auto& v : a) v = gen.uniform();
  for (auto& v : b) v = gen.uniform();
  EXPECT_NEAR(auroc(a, b), 0.5, 0.03);
}

TEST(EmpiricalCdf, StepsAndBounds) {
  std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  auto cdf = empirical_cdf(values, {0.5, 1.0, 2.5, 4.0, 9.0});
  EXPECT_NEAR(cdf[0], 0.0, 1e-9);
  EXPECT_NEAR(cdf[1], 0.25, 1e-9);
  EXPECT_NEAR(cdf[2], 0.5, 1e-9);
  EXPECT_NEAR(cdf[3], 1.0, 1e-9);
  EXPECT_NEAR(cdf[4], 1.0, 1e-9);
}

TEST(Metrics, ValidationErrors) {
  Tensor probs(Shape{2, 2}, 0.5f);
  EXPECT_THROW(accuracy(probs, zeros({3})), Error);
  EXPECT_THROW(expected_calibration_error(zeros({4}), zeros({4})), Error);
  EXPECT_THROW(auroc({}, {1.0}), Error);
  Tensor bad_labels(Shape{2}, {0.0f, 5.0f});
  EXPECT_THROW(nll(probs, bad_labels), Error);
}

TEST(Auroc, AllTiedScoresGiveHalf) {
  // Every comparison is a tie -> U counts half per pair -> exactly 0.5.
  EXPECT_EQ(auroc({0.3, 0.3, 0.3}, {0.3, 0.3}), 0.5);
}

TEST(Auroc, EmptySidesThrowEitherWay) {
  EXPECT_THROW(auroc({1.0}, {}), Error);
  EXPECT_THROW(auroc({}, {}), Error);
}

TEST(EmpiricalCdf, EmptyValuesThrow) {
  EXPECT_THROW(empirical_cdf({}, {0.0, 1.0}), Error);
}

TEST(Calibration, SingleBinConcentration) {
  // All four max-probs land in bin 7 of 10 ([0.7, 0.8)): one populated bin
  // with confidence mean 0.75 and accuracy 0.5, so ECE = |0.5 - 0.75|.
  Tensor probs(Shape{4, 2}, {0.72f, 0.28f, 0.74f, 0.26f, 0.76f, 0.24f, 0.78f,
                             0.22f});
  Tensor labels(Shape{4}, {1.0f, 0.0f, 0.0f, 1.0f});
  const auto bins = calibration_curve(probs, labels, 10);
  for (std::size_t b = 0; b < bins.size(); ++b) {
    EXPECT_EQ(bins[b].count, b == 7 ? 4 : 0);
  }
  EXPECT_DOUBLE_EQ(bins[7].accuracy, 0.5);
  EXPECT_DOUBLE_EQ(bins[7].confidence, 0.75);
  EXPECT_DOUBLE_EQ(expected_calibration_error(probs, labels, 10), 0.25);
}

TEST(Metrics, NllClampsZeroProbabilityTrueClass) {
  // p(true class) == 0 is clamped to 1e-12, keeping the NLL finite.
  Tensor probs(Shape{1, 2}, {1.0f, 0.0f});
  Tensor labels(Shape{1}, {1.0f});
  const double v = nll(probs, labels);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_DOUBLE_EQ(v, -std::log(1e-12f));
}

TEST(Metrics, BrierScoreHandValue) {
  // Example 0, label 0: (0.8-1)^2 + 0.2^2 = 0.08.
  // Example 1, label 1: 0.7^2 + (0.3-1)^2 = 0.98. Mean = 0.53.
  Tensor probs(Shape{2, 2}, {0.8f, 0.2f, 0.7f, 0.3f});
  Tensor labels(Shape{2}, {0.0f, 1.0f});
  EXPECT_NEAR(brier_score(probs, labels), 0.53, 1e-6);
  // Perfect one-hot prediction scores 0; maximally wrong scores 2.
  Tensor onehot(Shape{1, 2}, {1.0f, 0.0f});
  EXPECT_DOUBLE_EQ(brier_score(onehot, zeros({1})), 0.0);
  Tensor wrong_label(Shape{1}, {1.0f});
  EXPECT_DOUBLE_EQ(brier_score(onehot, wrong_label), 2.0);
  Tensor bad_label(Shape{1}, {3.0f});
  EXPECT_THROW(brier_score(onehot, bad_label), Error);
}

class EceProperty : public ::testing::TestWithParam<int> {};

TEST_P(EceProperty, BoundedAndBinCountStable) {
  Generator gen(static_cast<std::uint64_t>(GetParam()));
  const std::int64_t n = 50, c = 5;
  Tensor logits = randn({n, c}, &gen);
  Tensor probs = softmax(logits, -1);
  Tensor labels = randint({n}, 0, c - 1, &gen);
  for (int bins : {5, 10, 20}) {
    const double ece = expected_calibration_error(probs, labels, bins);
    EXPECT_GE(ece, 0.0);
    EXPECT_LE(ece, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EceProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tx::metrics
