// Tests for tx::guard (resil/guard.h) and the obs watchdog: budget caps and
// exhaustion ordering, deterministic clock-skew cancellation, the bitwise
// prefix-truncation contract of a deadline-degraded predict(), fit_svi budget
// integration (graceful stop, mid-step rollback, backoff clamping), hard
// cancellation through tx::par, pq degraded-batch tagging, and the watchdog's
// forensic-dump / healthz-override / escalation ladder. See docs/robustness.md.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/tyxe.h"
#include "obs/obs.h"
#include "par/pool.h"
#include "resil/fault.h"
#include "resil/guard.h"
#include "resil/resil.h"

namespace tyxe {
namespace {

namespace fault = tx::fault;
namespace guard = tx::guard;
namespace nd = tx::dist;
using tx::Shape;
using tx::Tensor;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// The paper's regression data (Foong et al., 2019) — same recipe as
/// core_bnn_test.cpp so predict paths run on realistic shapes.
std::pair<Tensor, Tensor> make_regression_data(std::int64_t n,
                                               tx::Generator& gen) {
  std::vector<float> xs, ys;
  for (std::int64_t i = 0; i < n; ++i) {
    const float x = static_cast<float>(
        i % 2 == 0 ? gen.uniform(-1.0, -0.7) : gen.uniform(0.5, 1.0));
    xs.push_back(x);
    ys.push_back(static_cast<float>(std::cos(4.0f * x + 0.8f) +
                                    gen.normal(0.0, 0.1)));
  }
  return {Tensor(Shape{n, 1}, std::move(xs)),
          Tensor(Shape{n, 1}, std::move(ys))};
}

std::shared_ptr<VariationalBNN> make_regression_bnn(tx::Generator& gen,
                                                    std::int64_t n_data) {
  auto net = tx::nn::make_mlp({1, 20, 1}, "tanh", &gen);
  auto likelihood = std::make_shared<HomoskedasticGaussian>(n_data, 0.1f);
  auto prior =
      std::make_shared<IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f));
  return std::make_shared<VariationalBNN>(net, prior, likelihood,
                                          guides::auto_normal_factory());
}

/// One full predict run from a fixed seed: fresh data, fresh BNN, identical
/// construction every call, so two runs differ only in num_predictions and
/// the (optional) installed budget.
Tensor seeded_predict(int threads, int num_predictions, guard::Budget* budget) {
  tx::par::set_num_threads(threads);
  tx::manual_seed(77);
  tx::Generator gen(77);
  auto [x, y] = make_regression_data(16, gen);
  (void)y;
  auto bnn = make_regression_bnn(gen, 16);
  if (budget != nullptr) {
    guard::BudgetScope scope(*budget);
    return bnn->predict({x}, num_predictions, /*aggregate=*/true);
  }
  return bnn->predict({x}, num_predictions, /*aggregate=*/true);
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.numel(), b.numel());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<std::size_t>(a.numel())),
            0);
}

/// Spin (up to ~5s real time) until `pred` holds; the watchdog tests use
/// this instead of fixed sleeps so they pass on loaded CI machines.
template <typename Pred>
bool wait_until(Pred pred) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

class GuardTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = tx::par::num_threads(); }
  void TearDown() override {
    // Every global knob a test can flip, restored unconditionally so one
    // failing assertion cannot poison the rest of the suite.
    fault::clear();
    guard::reset_clock();
    guard::clear_health_override();
    tx::obs::pq::set_enabled(false);
    tx::obs::pq::reset();
    tx::par::set_num_threads(saved_threads_);
  }

  int saved_threads_ = 1;
};

// ---- hooks and the Budget object -------------------------------------------

TEST_F(GuardTest, HooksAreInertWithoutBudget) {
  ASSERT_FALSE(guard::active());
  EXPECT_EQ(guard::current(), nullptr);
  EXPECT_NO_THROW(guard::check("par.chunk"));
  EXPECT_NO_THROW(guard::check_expiry("hmc.leapfrog"));
  EXPECT_NO_THROW(guard::begin_step("svi.step"));
  EXPECT_FALSE(guard::begin_sample("predict.sample"));
  EXPECT_EQ(guard::poll("svi.fit"), guard::Reason::kNone);
}

TEST_F(GuardTest, BudgetCapsAndExhaustionOrder) {
  guard::Budget b(3600.0);
  EXPECT_EQ(b.exhausted(), guard::Reason::kNone);
  b.set_step_cap(2);
  b.note_step();
  EXPECT_EQ(b.exhausted(), guard::Reason::kNone);
  b.note_step();
  EXPECT_EQ(b.exhausted(), guard::Reason::kStepCap);
  // The token outranks caps, and is sticky: the first reason wins.
  b.cancel(guard::Reason::kWatchdog);
  EXPECT_EQ(b.exhausted(), guard::Reason::kWatchdog);
  b.cancel(guard::Reason::kCancelled);
  EXPECT_EQ(b.exhausted(), guard::Reason::kWatchdog);
}

TEST_F(GuardTest, ClockSkewTripsTheDeadlineAtTheExactCountedCall) {
  fault::ScopedPlan plan("clock-skew=unit.site@2,ms=7200000");
  guard::Budget b(1800.0);
  guard::BudgetScope scope(b);
  EXPECT_NO_THROW(guard::check_expiry("unit.site"));  // matching call #1
  // Non-matching sites and hard-only kernel hooks (par chunk claims) never
  // consume clock-skew counts, so unrelated work cannot shift the firing
  // point of a targeted plan.
  EXPECT_NO_THROW(guard::check_expiry("other.site"));
  EXPECT_NO_THROW(guard::check("unit.site"));
  try {
    guard::check_expiry("unit.site");  // matching call #2: +7200s > deadline
    FAIL() << "expected guard::Cancelled";
  } catch (const guard::Cancelled& c) {
    EXPECT_EQ(c.reason(), guard::Reason::kDeadline);
  }
  EXPECT_EQ(fault::fires(fault::Kind::kClockSkew), 1);
  EXPECT_GT(b.elapsed_seconds(), 7000.0);
}

TEST_F(GuardTest, HardCancelThrowsFromParChunks) {
  guard::Budget b;
  guard::BudgetScope scope(b);
  b.cancel();
  EXPECT_THROW(tx::par::parallel_for(0, 1024, 64,
                                     [](std::int64_t, std::int64_t) {}),
               guard::Cancelled);
}

TEST_F(GuardTest, PassiveExpiryDoesNotStopParChunks) {
  // Deadline/cap expiry is a driver-level concern: kernel work issued after
  // a graceful degradation (aggregating the truncated stack) must complete.
  guard::Budget b(0.001);
  guard::advance_clock_ms(1000);
  guard::BudgetScope scope(b);
  ASSERT_EQ(b.exhausted(), guard::Reason::kDeadline);
  std::vector<int> hit(256, 0);
  EXPECT_NO_THROW(
      tx::par::parallel_for(0, 256, 32, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) hit[i] = 1;
      }));
  for (int h : hit) EXPECT_EQ(h, 1);
}

// ---- predict prefix-truncation ----------------------------------------------

TEST_F(GuardTest, DeadlineTruncatedPredictIsBitwiseEqualToHonestShortRun) {
  // The acceptance contract: a predict asked for n samples that hits its
  // deadline after k returns exactly what an honest num_predictions=k run
  // returns — bitwise, at every thread count. The deadline is huge and real;
  // the clock-skew plan advances the guard clock past it at begin_sample
  // call k+1, so truncation lands at exactly k deterministically.
  const int n = 8;
  const int k = 3;
  const Tensor honest = seeded_predict(1, k, nullptr);
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    fault::ScopedPlan plan("clock-skew=predict.sample@4,ms=7200000");
    guard::Budget budget(3600.0);
    const Tensor truncated = seeded_predict(threads, n, &budget);
    const guard::DegradedResult& status = guard::last_predict_status();
    EXPECT_TRUE(status.degraded);
    EXPECT_EQ(status.completed, k);
    EXPECT_EQ(status.requested, n);
    EXPECT_EQ(status.reason, guard::Reason::kDeadline);
    EXPECT_GT(status.elapsed_seconds, 7000.0);
    expect_bitwise_equal(honest, truncated);
    guard::reset_clock();
  }
}

TEST_F(GuardTest, SampleCapTruncatesWithoutAnyFaultPlan) {
  const Tensor honest = seeded_predict(1, 2, nullptr);
  guard::Budget budget;
  budget.set_sample_cap(2);
  const Tensor truncated = seeded_predict(1, 6, &budget);
  const guard::DegradedResult& status = guard::last_predict_status();
  EXPECT_TRUE(status.degraded);
  EXPECT_EQ(status.completed, 2);
  EXPECT_EQ(status.requested, 6);
  EXPECT_EQ(status.reason, guard::Reason::kSampleCap);
  expect_bitwise_equal(honest, truncated);
}

TEST_F(GuardTest, ExpiredBudgetStillDeliversTheFirstSample) {
  // Degradation floor: even a budget that is exhausted before the first
  // sample yields k=1 — callers always get a usable (if minimal) posterior
  // aggregate rather than an empty result.
  const Tensor honest = seeded_predict(1, 1, nullptr);
  guard::Budget budget(0.001);
  guard::advance_clock_ms(1000);  // deadline already passed
  const Tensor truncated = seeded_predict(1, 5, &budget);
  const guard::DegradedResult& status = guard::last_predict_status();
  EXPECT_TRUE(status.degraded);
  EXPECT_EQ(status.completed, 1);
  EXPECT_EQ(status.reason, guard::Reason::kDeadline);
  expect_bitwise_equal(honest, truncated);
}

TEST_F(GuardTest, GuardedPredictWithinBudgetIsNotDegraded) {
  guard::Budget budget(3600.0);
  const std::int64_t dropped_before =
      tx::obs::registry().counter("guard.predict.degraded").value();
  (void)seeded_predict(1, 3, &budget);
  const guard::DegradedResult& status = guard::last_predict_status();
  EXPECT_FALSE(status.degraded);
  EXPECT_EQ(status.completed, 3);
  EXPECT_EQ(status.requested, 3);
  EXPECT_EQ(status.reason, guard::Reason::kNone);
  EXPECT_EQ(budget.samples(), 3);
  EXPECT_EQ(tx::obs::registry().counter("guard.predict.degraded").value(),
            dropped_before);
}

TEST_F(GuardTest, DegradedPredictTagsThePqStreamAndBumpsCounters) {
  tx::obs::pq::set_enabled(true);
  tx::obs::pq::reset();
  auto& degraded = tx::obs::registry().counter("guard.predict.degraded");
  auto& dropped = tx::obs::registry().counter("guard.predict.samples_dropped");
  const std::int64_t degraded_before = degraded.value();
  const std::int64_t dropped_before = dropped.value();
  guard::Budget budget;
  budget.set_sample_cap(1);
  (void)seeded_predict(1, 4, &budget);
  auto table = tx::obs::pq::stream_table();
  ASSERT_EQ(table.count("predict"), 1u);
  EXPECT_EQ(table["predict"].degraded_batches, 1);
  EXPECT_EQ(degraded.value(), degraded_before + 1);
  EXPECT_EQ(dropped.value(), dropped_before + 3);  // 4 asked, 1 delivered
}

// ---- fit_svi budget integration ---------------------------------------------

struct FitFixture {
  Tensor x, y;
  std::shared_ptr<VariationalBNN> bnn;
  std::shared_ptr<tx::infer::Adam> optim;
  std::vector<Batch> data;

  FitFixture() {
    tx::manual_seed(11);
    tx::Generator gen(11);
    std::tie(x, y) = make_regression_data(32, gen);
    bnn = make_regression_bnn(gen, 32);
    optim = std::make_shared<tx::infer::Adam>(1e-2);
    data = {{{x}, y}};
  }
};

TEST_F(GuardTest, FitStopsGracefullyAtTheStepCap) {
  FitFixture f;
  guard::Budget budget;
  budget.set_step_cap(5);
  tx::resil::RetryPolicy policy;
  policy.checkpoint_every = 2;
  policy.budget = &budget;
  const tx::resil::FitReport report = f.bnn->fit(f.data, f.optim, 20, policy);
  EXPECT_TRUE(report.cancelled);
  EXPECT_FALSE(report.exhausted);
  EXPECT_EQ(report.failure_reason, "step-cap");
  EXPECT_EQ(report.steps_completed, 5);
}

TEST_F(GuardTest, FitDeadlineStopsAtAStepBoundary) {
  FitFixture f;
  // The third loop-top poll advances the guard clock past the deadline, so
  // exactly two steps complete and the stop is graceful (no rollback).
  fault::ScopedPlan plan("clock-skew=svi.fit@3,ms=7200000");
  guard::Budget budget(1800.0);
  tx::resil::RetryPolicy policy;
  policy.budget = &budget;
  const tx::resil::FitReport report = f.bnn->fit(f.data, f.optim, 20, policy);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.failure_reason, "deadline");
  EXPECT_EQ(report.steps_completed, 2);
  EXPECT_EQ(report.rollbacks, 0);
}

TEST_F(GuardTest, MidStepCancellationRollsBackToTheLastAnchor) {
  FitFixture f;
  // Step 2's begin_step hook trips the deadline and throws mid-step; the
  // driver rolls back to the post-step-1 anchor instead of keeping a
  // half-applied optimizer state.
  fault::ScopedPlan plan("clock-skew=svi.step@2,ms=7200000");
  guard::Budget budget(1800.0);
  tx::resil::RetryPolicy policy;
  policy.checkpoint_every = 1;
  policy.budget = &budget;
  const tx::resil::FitReport report = f.bnn->fit(f.data, f.optim, 20, policy);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.failure_reason, "deadline");
  EXPECT_EQ(report.steps_completed, 1);
}

TEST_F(GuardTest, RetryBackoffIsClampedToTheRemainingDeadline) {
  FitFixture f;
  // Every step's gradients are poisoned, so the driver would retry with a
  // 30s exponential backoff forever; the budget clamps each sleep to the
  // time remaining and the deadline stops the fit in well under one
  // unclamped backoff period.
  fault::ScopedPlan plan("nan-grad=@0x1000");
  guard::Budget budget(0.3);
  tx::resil::RetryPolicy policy;
  policy.checkpoint_every = 1;
  policy.max_retries = 1000;
  policy.backoff_seconds = 30.0;
  policy.max_backoff_seconds = 30.0;
  policy.budget = &budget;
  const auto t0 = std::chrono::steady_clock::now();
  const tx::resil::FitReport report = f.bnn->fit(f.data, f.optim, 50, policy);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.failure_reason, "deadline");
  EXPECT_LT(elapsed, 10.0);
  EXPECT_EQ(report.steps_completed, 0);
}

// ---- watchdog ---------------------------------------------------------------

TEST_F(GuardTest, WatchdogDumpsForensicsFlipsHealthzAndRecovers) {
  tx::obs::diag::Config cfg;
  cfg.forensic_path = tmp_path("guard_watchdog_forensic.jsonl");
  std::remove(cfg.forensic_path.c_str());
  tx::obs::diag::configure(cfg);
  tx::obs::diag::reset();

  guard::note_liveness("fit/step");
  auto& heartbeat = tx::obs::registry().gauge("obs.heartbeat_seconds");
  heartbeat.set(tx::obs::now_seconds() - 100.0);

  tx::obs::WatchdogOptions opts;
  opts.stale_after_seconds = 1.0;
  opts.poll_interval_seconds = 0.01;
  tx::obs::Watchdog dog(opts);
  dog.start();
  EXPECT_TRUE(guard::watchdog_interested());
  ASSERT_TRUE(wait_until([&] { return dog.stalls() >= 1; }));

  EXPECT_TRUE(guard::health_overridden());
  int http_status = 0;
  const std::string body = tx::obs::live::render_healthz(1.0, http_status);
  EXPECT_EQ(http_status, 503);
  EXPECT_NE(body.find("\"stalled\""), std::string::npos);
  EXPECT_NE(body.find("fit/step"), std::string::npos) << body;
  EXPECT_TRUE(std::ifstream(cfg.forensic_path).good())
      << "expected a forced forensic bundle at " << cfg.forensic_path;

  // A fresh heartbeat clears the override; the episode count stays.
  heartbeat.set(tx::obs::now_seconds());
  ASSERT_TRUE(wait_until([&] { return !guard::health_overridden(); }));
  EXPECT_EQ(dog.stalls(), 1);
  dog.stop();
  EXPECT_FALSE(guard::watchdog_interested());
}

TEST_F(GuardTest, WatchdogEscalationCancelsLiveBudgets) {
  tx::obs::diag::Config cfg;
  cfg.forensic_path = tmp_path("guard_watchdog_escalate_forensic.jsonl");
  tx::obs::diag::configure(cfg);
  tx::obs::diag::reset();

  guard::Budget budget(3600.0);
  tx::obs::registry().gauge("obs.heartbeat_seconds")
      .set(tx::obs::now_seconds() - 100.0);

  tx::obs::WatchdogOptions opts;
  opts.stale_after_seconds = 1.0;
  opts.poll_interval_seconds = 0.01;
  opts.escalate_cancel = true;
  tx::obs::Watchdog dog(opts);
  dog.start();
  ASSERT_TRUE(wait_until([&] { return budget.cancelled(); }));
  EXPECT_EQ(budget.exhausted(), guard::Reason::kWatchdog);

  // stop() while still stalled clears the override this watchdog set.
  dog.stop();
  EXPECT_FALSE(guard::health_overridden());
  tx::obs::registry().gauge("obs.heartbeat_seconds").set(tx::obs::now_seconds());
}

}  // namespace
}  // namespace tyxe
