// Tests for the streaming inference-health diagnostics (obs/diag.h +
// ppl::DiagnosticsMessenger): Welford accumulators, the disabled-is-inert
// contract, per-site SVI health on a conjugate model, the NaN sentinel /
// flight recorder on a poisoned learning rate, MCMC per-site R̂/ESS and
// divergence localization, multi-chain diag under tx::par (the TSan target),
// and a python round-trip against validate_bench.py --diag.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "infer/infer.h"
#include "obs/obs.h"
#include "ppl/diag.h"
#include "ppl/ppl.h"

namespace tx {
namespace {

namespace diag = obs::diag;
using dist::Normal;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_lines(const std::string& text) {
  std::size_t n = 0;
  for (char c : text) n += c == '\n';
  return n;
}

class DiagTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::registry().clear();
    diag::reset();
    diag::Config cfg;
    cfg.forensic_path = temp_path("tx_forensic_test.jsonl");
    cfg.refresh_interval = 8;
    diag::configure(cfg);
    diag::reset();
    std::remove(cfg.forensic_path.c_str());
  }
  void TearDown() override {
    diag::set_enabled(false);
    std::remove(diag::config().forensic_path.c_str());
    diag::reset();
    obs::registry().clear();
  }
};

/// data ~ Normal(z, 0.5), z ~ Normal(0, 1): the conjugate setup the SVI
/// tests use, small enough that per-step diagnostics dominate runtime.
infer::Program make_model() {
  Tensor data(Shape{8},
              {1.2f, 0.8f, 1.1f, 0.9f, 1.3f, 1.0f, 0.7f, 1.4f});
  return [data] {
    Tensor z = ppl::sample("z", std::make_shared<Normal>(0.0f, 1.0f));
    ppl::sample("obs", std::make_shared<Normal>(z, Tensor::scalar(0.5f)),
                data);
  };
}

TEST(DiagWelford, MatchesClosedFormMoments) {
  diag::Welford w;
  EXPECT_TRUE(std::isnan(w.variance()));
  w.add(1.0);
  EXPECT_DOUBLE_EQ(w.mean, 1.0);
  EXPECT_TRUE(std::isnan(w.variance()));  // one sample: undefined
  w.add(3.0);
  w.add(5.0);
  EXPECT_DOUBLE_EQ(w.mean, 3.0);
  EXPECT_DOUBLE_EQ(w.variance(), 4.0);  // sample variance of {1,3,5}
  EXPECT_DOUBLE_EQ(w.stddev(), 2.0);
}

TEST_F(DiagTest, DisabledHooksAreInert) {
  EXPECT_FALSE(diag::enabled());
  diag::svi_step_begin(0);
  EXPECT_FALSE(diag::in_svi_step());
  diag::record_site_value("z", 1.0, 0.0, 2.0, 4, true);
  diag::record_site_kl("z", 0.5);
  diag::record_param_grad("g.loc", 0.1, 1.0, true);
  diag::svi_step_end(1.0, 1.0);
  diag::mcmc_update_site_health("z", 100.0, 1.01);
  EXPECT_EQ(diag::records(), 0);
  EXPECT_EQ(diag::nan_trips(), 0);
  EXPECT_EQ(diag::forensic_dumps(), 0);
}

TEST_F(DiagTest, SviStreamsSiteKlAndGradientHealth) {
  manual_seed(7);
  diag::set_enabled(true);
  ppl::DiagnosticsMessenger messenger;
  ppl::HandlerScope scope(messenger);

  ppl::ParamStore store;
  auto model = make_model();
  auto guide = std::make_shared<infer::AutoNormal>(
      model, infer::AutoNormalConfig{}, "g", &store);
  infer::SVI svi(model, [guide] { (*guide)(); },
                 std::make_shared<infer::Adam>(0.05),
                 std::make_shared<infer::TraceELBO>(1), &store);
  for (int i = 0; i < 50; ++i) svi.step();

  EXPECT_EQ(diag::records(), 50);
  EXPECT_EQ(diag::nan_trips(), 0);
  // Guide + model sightings for the latent site, every step.
  EXPECT_EQ(messenger.sites_seen(), 100);

  diag::publish(obs::registry());
  const auto gauges = obs::registry().gauges();
  ASSERT_TRUE(gauges.count("diag.svi.steps"));
  EXPECT_DOUBLE_EQ(gauges.at("diag.svi.steps"), 50.0);
  ASSERT_TRUE(gauges.count("diag.svi.elbo_mean"));
  EXPECT_TRUE(std::isfinite(gauges.at("diag.svi.elbo_mean")));

  const std::string path = temp_path("diag_svi_snapshot.json");
  ASSERT_TRUE(diag::write_snapshot(path, "diag_svi"));
  const std::string doc = read_file(path);
  EXPECT_NE(doc.find("\"schema\": \"tx.diag.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"z\""), std::string::npos);
  // Normal||Normal has a registered closed form, so the site carries KL.
  EXPECT_NE(doc.find("\"kl_mean\""), std::string::npos);
  // AutoNormal's parameters show up with gradient statistics.
  EXPECT_NE(doc.find("\"grad_norm_mean\""), std::string::npos);
  EXPECT_NE(doc.find("\"grad_snr\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(DiagTest, KlPairingNeverCrossesStepBoundaries) {
  diag::set_enabled(true);
  ppl::DiagnosticsMessenger messenger;
  auto sight = [&](const std::string& name, dist::DistPtr d) {
    ppl::SampleMsg msg;
    msg.name = name;
    msg.distribution = std::move(d);
    msg.value = Tensor::scalar(0.5f);
    messenger.postprocess_message(msg);
  };

  // A site present in only one of guide/model is sighted once per step; its
  // stale pending entry must be replaced at the next step, never paired
  // (which would record KL(q_step_n ‖ q_step_n+1) or swap q/p).
  diag::svi_step_begin(0);
  sight("lonely", std::make_shared<Normal>(0.0f, 1.0f));
  diag::svi_step_end(1.0, 1.0);
  diag::svi_step_begin(1);
  sight("lonely", std::make_shared<Normal>(5.0f, 2.0f));
  diag::svi_step_end(1.0, 1.0);

  // A guide/model pair inside a single step still records KL.
  diag::svi_step_begin(2);
  sight("paired", std::make_shared<Normal>(0.0f, 1.0f));
  sight("paired", std::make_shared<Normal>(0.0f, 1.0f));
  diag::svi_step_end(1.0, 1.0);

  const std::string path = temp_path("diag_kl_pairing.json");
  ASSERT_TRUE(diag::write_snapshot(path, "kl_pairing"));
  const std::string doc = read_file(path);
  const auto lonely_pos = doc.find("\"lonely\"");
  ASSERT_NE(lonely_pos, std::string::npos);
  const auto lonely_end = doc.find('}', lonely_pos);
  EXPECT_EQ(doc.substr(lonely_pos, lonely_end - lonely_pos).find("kl_"),
            std::string::npos);
  EXPECT_NE(doc.find("\"kl_count\": 1"), std::string::npos);  // paired only
  std::remove(path.c_str());
}

TEST_F(DiagTest, NonFiniteCoordinatesDoNotCountAsMoved) {
  diag::set_enabled(true);
  const std::vector<diag::SiteSpan> spans{{"z", 0, 1}};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // NaN != NaN is true, so without the finiteness guard a broken chain
  // would report a perfect moved-fraction.
  diag::mcmc_record_transition(spans, /*chain=*/0, /*step=*/0,
                               /*warmup=*/false, /*accept_prob=*/0.25,
                               /*divergent=*/false, {nan}, {nan});
  const std::string path = temp_path("diag_moved.json");
  ASSERT_TRUE(diag::write_snapshot(path, "diag_moved"));
  const std::string doc = read_file(path);
  EXPECT_NE(doc.find("\"moved\": 0"), std::string::npos);
  EXPECT_NE(doc.find("\"moved_fraction\": 0"), std::string::npos);
  EXPECT_NE(doc.find("\"accept_prob_mean\": 0.25"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(DiagTest, PoisonedLearningRateTripsForensicDump) {
  manual_seed(11);
  diag::set_enabled(true);
  ppl::DiagnosticsMessenger messenger;
  ppl::HandlerScope scope(messenger);

  ppl::ParamStore store;
  auto model = make_model();
  auto guide = std::make_shared<infer::AutoNormal>(
      model, infer::AutoNormalConfig{}, "g", &store);
  // A learning rate this size blows the variational parameters out within a
  // few steps: exp() of the exploded scale parameter overflows, the next
  // sampled site value is non-finite, and the sentinel trips.
  infer::SVI svi(model, [guide] { (*guide)(); },
                 std::make_shared<infer::Adam>(1e25),
                 std::make_shared<infer::TraceELBO>(1), &store);
  for (int i = 0; i < 30 && diag::nan_trips() == 0; ++i) svi.step();

  ASSERT_GT(diag::nan_trips(), 0);
  EXPECT_EQ(diag::forensic_dumps(), 1);
  EXPECT_FALSE(diag::last_forensic_reason().empty());

  const std::string dump = read_file(diag::config().forensic_path);
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("tx.diag.forensic.v1"), std::string::npos);
  EXPECT_NE(dump.find(diag::last_forensic_reason()), std::string::npos);
  // The bundle names the offending site when the trip came from a site or
  // parameter value (a bare loss trip has no site to blame).
  if (!diag::last_offending_site().empty()) {
    EXPECT_NE(dump.find(diag::last_offending_site()), std::string::npos);
  }
  // Header + detail + the recorded steps leading up to the failure.
  EXPECT_GE(count_lines(dump), 3u);
  EXPECT_NE(dump.find("\"kind\": \"svi\""), std::string::npos);

  // Later trips only bump counters (max_forensic_dumps = 1).
  for (int i = 0; i < 3; ++i) svi.step();
  EXPECT_EQ(diag::forensic_dumps(), 1);
}

TEST_F(DiagTest, McmcRefreshPublishesPerSiteHealth) {
  manual_seed(21);
  diag::set_enabled(true);
  Generator gen(21);
  auto kernel = std::make_shared<infer::HMC>(0.1, 5);
  infer::MCMC mcmc(kernel, /*num_samples=*/64, /*warmup=*/32);
  mcmc.run(make_model(), &gen);

  EXPECT_GT(diag::records(), 0);
  diag::publish(obs::registry());
  const auto gauges = obs::registry().gauges();
  ASSERT_TRUE(gauges.count("diag.mcmc.transitions"));
  EXPECT_DOUBLE_EQ(gauges.at("diag.mcmc.transitions"), 96.0);
  ASSERT_TRUE(gauges.count("diag.mcmc.ess_min"));
  EXPECT_GT(gauges.at("diag.mcmc.ess_min"), 0.0);
  ASSERT_TRUE(gauges.count("diag.mcmc.rhat_max"));
  EXPECT_GT(gauges.at("diag.mcmc.rhat_max"), 0.5);

  const std::string path = temp_path("diag_mcmc_snapshot.json");
  ASSERT_TRUE(diag::write_snapshot(path, "diag_mcmc"));
  const std::string doc = read_file(path);
  EXPECT_NE(doc.find("\"ess\""), std::string::npos);
  EXPECT_NE(doc.find("\"rhat\""), std::string::npos);
  EXPECT_NE(doc.find("\"moved_fraction\""), std::string::npos);
  EXPECT_NE(doc.find("\"accept_prob_mean\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(DiagTest, DivergenceIsLocalizedToTheBlowupSite) {
  manual_seed(31);
  diag::set_enabled(true);
  Generator gen(31);
  // An enormous frozen step size makes every trajectory blow up.
  auto kernel =
      std::make_shared<infer::HMC>(1e8, 3, /*adapt_step_size=*/false);
  infer::MCMC mcmc(kernel, /*num_samples=*/10, /*warmup=*/0);
  mcmc.run(make_model(), &gen);

  EXPECT_GT(mcmc.divergence_count(), 0);
  EXPECT_EQ(diag::last_forensic_reason(), "divergence");
  EXPECT_EQ(diag::last_offending_site(), "z");
  const std::string dump = read_file(diag::config().forensic_path);
  EXPECT_NE(dump.find("\"reason\": \"divergence\""), std::string::npos);
  EXPECT_NE(dump.find("\"offending_site\": \"z\""), std::string::npos);
}

TEST_F(DiagTest, MultiChainMcmcStreamsUnderParWorkers) {
  manual_seed(41);
  diag::set_enabled(true);
  ppl::DiagnosticsMessenger messenger;
  ppl::HandlerScope scope(messenger);  // propagated into tx::par workers
  Generator gen(41);
  infer::MCMC mcmc([] { return std::make_shared<infer::HMC>(0.1, 5); },
                   /*num_samples=*/32, /*warmup_steps=*/16, /*num_chains=*/2);
  mcmc.run(make_model(), &gen);

  diag::publish(obs::registry());
  const auto gauges = obs::registry().gauges();
  ASSERT_TRUE(gauges.count("diag.mcmc.chains"));
  EXPECT_DOUBLE_EQ(gauges.at("diag.mcmc.chains"), 2.0);
  EXPECT_DOUBLE_EQ(gauges.at("diag.mcmc.transitions"), 96.0);
  // The post-join cross-chain refresh produced per-site health.
  ASSERT_TRUE(gauges.count("diag.mcmc.ess_min"));
  EXPECT_GT(gauges.at("diag.mcmc.ess_min"), 0.0);
}

TEST_F(DiagTest, SnapshotPassesPythonValidator) {
  if (std::system("python3 -c 'import json' >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  manual_seed(51);
  diag::set_enabled(true);
  ppl::DiagnosticsMessenger messenger;
  ppl::HandlerScope scope(messenger);

  ppl::ParamStore store;
  auto model = make_model();
  auto guide = std::make_shared<infer::AutoNormal>(
      model, infer::AutoNormalConfig{}, "g", &store);
  infer::SVI svi(model, [guide] { (*guide)(); },
                 std::make_shared<infer::Adam>(0.05),
                 std::make_shared<infer::TraceELBO>(1), &store);
  for (int i = 0; i < 20; ++i) svi.step();
  Generator gen(51);
  auto kernel = std::make_shared<infer::HMC>(0.1, 5);
  infer::MCMC mcmc(kernel, /*num_samples=*/32, /*warmup=*/16);
  mcmc.run(model, &gen);

  const std::string path = temp_path("diag_roundtrip.diag.json");
  ASSERT_TRUE(diag::write_snapshot(path, "diag_roundtrip"));
  const std::string cmd = std::string("python3 ") + TX_SOURCE_DIR +
                          "/scripts/validate_bench.py --diag " + path +
                          " >/dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "validate_bench.py rejected "
                                         << path;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tx
