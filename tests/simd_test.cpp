// tx::simd determinism contract: every dispatch level computes bitwise
// identical results — elementwise kernels because each output lane is one
// IEEE expression, reductions because every level implements the same
// 8-virtual-lane + fixed-combine-tree algorithm. On hosts without AVX2 the
// cross-level tests skip (only the scalar level exists to compare).
#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/simd.h"

namespace tx {
namespace {

using simd::Level;

/// Restores the startup dispatch level when a test that forces levels exits.
class LevelGuard {
 public:
  LevelGuard() : saved_(simd::active_level()) {}
  ~LevelGuard() { simd::set_level_for_testing(saved_); }

 private:
  Level saved_;
};

std::vector<Level> vector_levels() {
  std::vector<Level> out;
  if (simd::level_available(Level::kAVX2)) out.push_back(Level::kAVX2);
  if (simd::level_available(Level::kNEON)) out.push_back(Level::kNEON);
  return out;
}

/// Deterministic data mix: magnitudes across many exponents, both signs,
/// exact zeros of both signs sprinkled in.
std::vector<float> test_data(std::int64_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> mant(-1.0f, 1.0f);
  std::uniform_int_distribution<int> expo(-20, 20);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    const int roll = static_cast<int>(rng() % 16u);
    if (roll == 0) {
      x = 0.0f;
    } else if (roll == 1) {
      x = -0.0f;
    } else {
      x = std::ldexp(mant(rng), expo(rng));
    }
  }
  return v;
}

/// Sizes that exercise empty input, sub-lane tails, exact lane multiples,
/// and a large buffer.
const std::int64_t kSizes[] = {0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 1000, 4099};

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

template <typename Fn>
void expect_levels_agree(const char* what, Fn&& run) {
  LevelGuard guard;
  const auto vecs = vector_levels();
  if (vecs.empty()) GTEST_SKIP() << "no vector level available on this host";
  simd::set_level_for_testing(Level::kScalar);
  const std::vector<float> ref = run();
  for (Level lvl : vecs) {
    ASSERT_EQ(simd::set_level_for_testing(lvl), lvl);
    const std::vector<float> got = run();
    ASSERT_TRUE(bitwise_equal(ref, got))
        << what << " diverges between scalar and level "
        << static_cast<int>(lvl);
  }
}

TEST(SimdDispatch, StartupLevelIsAvailableAndNamed) {
  EXPECT_TRUE(simd::level_available(simd::active_level()));
  const std::string name = simd::level_name();
  EXPECT_TRUE(name == "off" || name == "avx2" || name == "neon") << name;
}

TEST(SimdDispatch, ForcingUnavailableLevelFallsBackToScalar) {
  LevelGuard guard;
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_EQ(simd::set_level_for_testing(Level::kNEON), Level::kScalar);
#else
  EXPECT_EQ(simd::set_level_for_testing(Level::kAVX2), Level::kScalar);
#endif
}

TEST(SimdKernels, BinaryElementwiseBitwiseAcrossLevels) {
  struct Case {
    const char* name;
    void (*fn)(const float*, const float*, float*, std::int64_t);
  };
  const Case cases[] = {
      {"add_n", simd::add_n}, {"sub_n", simd::sub_n}, {"mul_n", simd::mul_n},
      {"div_n", simd::div_n}, {"max_n", simd::max_n}, {"min_n", simd::min_n},
  };
  for (const auto& c : cases) {
    for (std::int64_t n : kSizes) {
      const auto a = test_data(n, 1);
      auto b = test_data(n, 2);
      // Keep div well-defined: no zero denominators (0/0 NaN payloads are
      // implementation detail territory, not part of the contract).
      for (auto& x : b) {
        if (x == 0.0f) x = 0.5f;
      }
      expect_levels_agree(c.name, [&] {
        std::vector<float> o(static_cast<std::size_t>(n), -777.0f);
        c.fn(a.data(), b.data(), o.data(), n);
        return o;
      });
    }
  }
}

TEST(SimdKernels, UnaryElementwiseBitwiseAcrossLevels) {
  struct Case {
    const char* name;
    void (*fn)(const float*, float*, std::int64_t);
  };
  const Case cases[] = {
      {"neg_n", simd::neg_n},
      {"abs_n", simd::abs_n},
      {"relu_n", simd::relu_n},
  };
  for (const auto& c : cases) {
    for (std::int64_t n : kSizes) {
      const auto a = test_data(n, 3);
      expect_levels_agree(c.name, [&] {
        std::vector<float> o(static_cast<std::size_t>(n), -777.0f);
        c.fn(a.data(), o.data(), n);
        return o;
      });
    }
  }
}

TEST(SimdKernels, SqrtScaleClampAxpyMulAddBitwiseAcrossLevels) {
  for (std::int64_t n : kSizes) {
    auto a = test_data(n, 4);
    const auto b = test_data(n, 5);
    const auto c = test_data(n, 6);
    expect_levels_agree("scale_n", [&] {
      std::vector<float> o(static_cast<std::size_t>(n));
      simd::scale_n(a.data(), 1.7f, o.data(), n);
      return o;
    });
    expect_levels_agree("clamp_n", [&] {
      std::vector<float> o(static_cast<std::size_t>(n));
      simd::clamp_n(a.data(), -0.25f, 0.75f, o.data(), n);
      return o;
    });
    expect_levels_agree("mul_add_n", [&] {
      std::vector<float> o(static_cast<std::size_t>(n));
      simd::mul_add_n(a.data(), b.data(), c.data(), o.data(), n);
      return o;
    });
    expect_levels_agree("axpy_n", [&] {
      std::vector<float> o = c;
      simd::axpy_n(0.37f, b.data(), o.data(), n);
      return o;
    });
    for (auto& x : a) x = std::fabs(x);  // sqrt stays on non-negative input
    expect_levels_agree("sqrt_n", [&] {
      std::vector<float> o(static_cast<std::size_t>(n));
      simd::sqrt_n(a.data(), o.data(), n);
      return o;
    });
  }
}

TEST(SimdKernels, MaxMinMatchVectorSemanticsOnNaN) {
  // Contract: (a OP b) ? a : b — the second operand wins on any unordered
  // compare, mirroring vmaxps/vminps. Verified identical across levels.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> a = {nan, 1.0f, -0.0f, 3.0f};
  const std::vector<float> b = {2.0f, nan, 0.0f, -1.0f};
  expect_levels_agree("max_n(nan)", [&] {
    std::vector<float> o(a.size());
    simd::max_n(a.data(), b.data(), o.data(),
                static_cast<std::int64_t>(a.size()));
    return o;
  });
  LevelGuard guard;
  simd::set_level_for_testing(Level::kScalar);
  std::vector<float> o(a.size());
  simd::max_n(a.data(), b.data(), o.data(),
              static_cast<std::int64_t>(a.size()));
  EXPECT_EQ(o[0], 2.0f);          // nan OP b is false -> b
  EXPECT_TRUE(std::isnan(o[1]));  // a OP nan is false -> b (nan)
}

/// Reference implementation of the canonical 8-lane reduction, written
/// independently of src/tensor/simd.cpp.
template <typename Acc, typename Load>
Acc reference_lanes8(std::int64_t n, Load&& load) {
  Acc p[8] = {};
  const std::int64_t main_n = n & ~std::int64_t{7};
  for (std::int64_t i = 0; i < main_n; i += 8) {
    for (int l = 0; l < 8; ++l) p[l] = p[l] + load(i + l);
  }
  Acc tree = ((p[0] + p[1]) + (p[2] + p[3])) + ((p[4] + p[5]) + (p[6] + p[7]));
  for (std::int64_t i = main_n; i < n; ++i) tree = tree + load(i);
  return tree;
}

TEST(SimdReductions, MatchCanonicalLaneAlgorithmAtEveryLevel) {
  LevelGuard guard;
  std::vector<Level> levels = {Level::kScalar};
  for (Level lvl : vector_levels()) levels.push_back(lvl);
  for (std::int64_t n : kSizes) {
    const auto a = test_data(n, 7);
    const auto b = test_data(n, 8);
    const float want_dot = reference_lanes8<float>(
        n, [&](std::int64_t i) { return a[i] * b[i]; });
    const float want_sumf =
        reference_lanes8<float>(n, [&](std::int64_t i) { return a[i]; });
    const double want_sum = reference_lanes8<double>(
        n, [&](std::int64_t i) { return static_cast<double>(a[i]); });
    const double want_sumsq = reference_lanes8<double>(n, [&](std::int64_t i) {
      return static_cast<double>(a[i] * a[i]);
    });
    for (Level lvl : levels) {
      simd::set_level_for_testing(lvl);
      EXPECT_EQ(simd::dot8(a.data(), b.data(), n), want_dot) << n;
      EXPECT_EQ(simd::sum8f(a.data(), n), want_sumf) << n;
      EXPECT_EQ(simd::sum8(a.data(), n), want_sum) << n;
      EXPECT_EQ(simd::sumsq8(a.data(), n), want_sumsq) << n;
    }
  }
}

TEST(SimdKernels, CopyIsExact) {
  const auto a = test_data(257, 9);
  std::vector<float> o(a.size(), 0.0f);
  simd::copy_n(a.data(), o.data(), static_cast<std::int64_t>(a.size()));
  EXPECT_TRUE(bitwise_equal(a, o));
}

}  // namespace
}  // namespace tx
