// Tests for likelihood classes: KL/likelihood scaling, aggregation,
// predictive log-likelihood, error measures.
#include <gtest/gtest.h>

#include <cmath>

#include "core/likelihoods.h"

namespace tyxe {
namespace {

using tx::Shape;
using tx::Tensor;

TEST(Likelihood, DataProgramScalesByDatasetOverBatch) {
  Categorical lik(/*dataset_size=*/100);
  Tensor logits = tx::zeros({4, 3});
  Tensor targets(Shape{4}, {0.0f, 1.0f, 2.0f, 0.0f});
  tx::ppl::TraceMessenger tracer;
  {
    tx::ppl::HandlerScope scope(tracer);
    lik.data_program(logits, targets);
  }
  const auto& site = tracer.trace().at("likelihood.data");
  EXPECT_TRUE(site.is_observed);
  EXPECT_NEAR(site.scale, 25.0, 1e-9);  // 100 / 4
  // Uniform logits: log 1/3 per observation, x4 observations, x25 scale.
  EXPECT_NEAR(site.log_prob_sum().item(), 25.0f * 4.0f * std::log(1.0f / 3.0f),
              1e-2);
}

TEST(Likelihood, SetDatasetSizeChangesScaling) {
  Categorical lik(100);
  lik.set_dataset_size(8);
  Tensor logits = tx::zeros({4, 3});
  Tensor targets(Shape{4}, {0.0f, 1.0f, 2.0f, 0.0f});
  tx::ppl::TraceMessenger tracer;
  {
    tx::ppl::HandlerScope scope(tracer);
    lik.data_program(logits, targets);
  }
  EXPECT_NEAR(tracer.trace().at("likelihood.data").scale, 2.0, 1e-9);
  EXPECT_THROW(lik.set_dataset_size(0), tx::Error);
}

TEST(Categorical, AggregateAveragesProbabilities) {
  // Two samples with opposite hard predictions average to uniform.
  Tensor s1(Shape{1, 2}, {10.0f, -10.0f});
  Tensor s2(Shape{1, 2}, {-10.0f, 10.0f});
  Tensor stacked = tx::stack({s1, s2}, 0);
  Categorical lik(10);
  Tensor agg = lik.aggregate_predictions(stacked);
  EXPECT_EQ(agg.shape(), (Shape{1, 2}));
  EXPECT_NEAR(agg.at(0), 0.5f, 1e-4);
  EXPECT_NEAR(agg.at(1), 0.5f, 1e-4);
}

TEST(Categorical, LogPredictiveIsMixture) {
  Tensor s1(Shape{1, 2}, {10.0f, -10.0f});
  Tensor s2(Shape{1, 2}, {-10.0f, 10.0f});
  Tensor stacked = tx::stack({s1, s2}, 0);
  Categorical lik(10);
  Tensor target(Shape{1}, {0.0f});
  // Mixture prob = 0.5 regardless of which component is right.
  EXPECT_NEAR(lik.log_predictive(stacked, target).item(), std::log(0.5f), 1e-3);
}

TEST(Categorical, ErrorRate) {
  Categorical lik(10);
  Tensor probs(Shape{4, 2}, {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f, 0.3f, 0.7f});
  Tensor targets(Shape{4}, {0.0f, 1.0f, 1.0f, 0.0f});  // 2 wrong
  EXPECT_NEAR(lik.error(probs, targets).item(), 0.5f, 1e-6);
}

TEST(Bernoulli, AggregateAndError) {
  Bernoulli lik(10);
  Tensor s1(Shape{3}, {5.0f, -5.0f, 5.0f});
  Tensor s2(Shape{3}, {5.0f, -5.0f, -5.0f});
  Tensor stacked = tx::stack({s1, s2}, 0);
  Tensor agg = lik.aggregate_predictions(stacked);
  EXPECT_NEAR(agg.at(0), 1.0f, 1e-2);
  EXPECT_NEAR(agg.at(2), 0.5f, 1e-2);
  // Predictions after thresholding: {1, 0, 1}; two of three disagree.
  Tensor targets(Shape{3}, {1.0f, 1.0f, 0.0f});
  EXPECT_NEAR(lik.error(agg, targets).item(), 2.0f / 3.0f, 1e-4);
}

TEST(HomoGaussian, FixedScaleDensityAndError) {
  HomoskedasticGaussian lik(50, 0.1f);
  Tensor pred = tx::zeros({4, 1});
  auto d = lik.predictive_distribution(pred);
  EXPECT_EQ(d->shape(), (Shape{4, 1}));
  Tensor stacked = tx::stack({tx::zeros({2, 1}), tx::full({2, 1}, 2.0f)}, 0);
  Tensor agg = lik.aggregate_predictions(stacked);
  EXPECT_NEAR(agg.at(0), 1.0f, 1e-5);
  Tensor targets = tx::ones({2, 1});
  EXPECT_NEAR(lik.error(agg, targets).item(), 0.0f, 1e-6);
  EXPECT_THROW(HomoskedasticGaussian(50, -1.0f), tx::Error);
}

TEST(HomoGaussian, PredictiveStdCombinesSamplesAndNoise) {
  HomoskedasticGaussian lik(50, 0.5f);
  // Two samples at 0 and 2: sample std = 1 per element; total = sqrt(1+0.25).
  Tensor stacked = tx::stack({tx::zeros({3}), tx::full({3}, 2.0f)}, 0);
  Tensor std = lik.predictive_std(stacked);
  EXPECT_NEAR(std.at(0), std::sqrt(1.25f), 1e-4);
}

TEST(HomoGaussian, LatentScaleEmitsExtraSite) {
  auto scale_prior = std::make_shared<tx::dist::LogNormal>(
      Tensor::scalar(std::log(0.2f)), Tensor::scalar(0.1f));
  HomoskedasticGaussian lik(20, scale_prior);
  EXPECT_TRUE(lik.has_latent_scale());
  Tensor preds = tx::zeros({5, 1});
  Tensor obs = tx::zeros({5, 1});
  tx::ppl::TraceMessenger tracer;
  {
    tx::ppl::HandlerScope scope(tracer);
    lik.data_program(preds, obs);
  }
  ASSERT_TRUE(tracer.trace().contains("likelihood.data.scale"));
  // The scale site must not be scaled by dataset/batch.
  EXPECT_NEAR(tracer.trace().at("likelihood.data.scale").scale, 1.0, 1e-9);
  EXPECT_NEAR(tracer.trace().at("likelihood.data").scale, 4.0, 1e-9);
  EXPECT_GT(tracer.trace().at("likelihood.data.scale").value.item(), 0.0f);
}

TEST(HomoGaussian, MixturePredictiveMatchesManualLogSumExp) {
  HomoskedasticGaussian lik(10, 1.0f);
  Tensor stacked = tx::stack({tx::zeros({1}), tx::full({1}, 1.0f)}, 0);
  Tensor target(Shape{1}, {0.5f});
  tx::dist::Normal n0(0.0f, 1.0f), n1(1.0f, 1.0f);
  const float l0 = n0.log_prob(Tensor::scalar(0.5f)).item();
  const float l1 = n1.log_prob(Tensor::scalar(0.5f)).item();
  const float expected =
      std::log(0.5f * (std::exp(l0) + std::exp(l1)));
  EXPECT_NEAR(lik.log_predictive(stacked, target).item(), expected, 1e-4);
}

TEST(HeteroGaussian, SplitAndAggregate) {
  HeteroskedasticGaussian lik(10);
  // predictions: [mean | raw_scale]; softplus(0) ~ 0.693.
  Tensor pred(Shape{2, 2}, {1.0f, 0.0f, 3.0f, 0.0f});
  auto [mean, scale] = HeteroskedasticGaussian::split(pred);
  EXPECT_FLOAT_EQ(mean.at(0), 1.0f);
  EXPECT_NEAR(scale.at(0), std::log(2.0f) + 1e-4f, 1e-5);
  EXPECT_THROW(HeteroskedasticGaussian::split(tx::zeros({2, 3})), tx::Error);
  // Aggregation of two equal-precision samples averages the means.
  Tensor stacked = tx::stack({pred, pred}, 0);
  Tensor agg = lik.aggregate_predictions(stacked);
  auto [am, as] = HeteroskedasticGaussian::split(agg);
  EXPECT_NEAR(am.at(0), 1.0f, 1e-4);
  EXPECT_NEAR(am.at(1), 3.0f, 1e-4);
  Tensor targets(Shape{2, 1}, {1.0f, 3.0f});
  EXPECT_NEAR(lik.error(agg, targets).item(), 0.0f, 1e-5);
}

TEST(PoissonLikelihood, RateAndError) {
  Poisson lik(10);
  Tensor pred = tx::full({3}, 2.0f);
  auto d = lik.predictive_distribution(pred);
  EXPECT_EQ(d->name(), "Poisson");
  Tensor stacked = tx::stack({pred, pred}, 0);
  Tensor agg = lik.aggregate_predictions(stacked);
  EXPECT_NEAR(agg.at(0), std::log(1.0f + std::exp(2.0f)), 1e-3);
  // log_predictive falls back to the generic mixture path.
  Tensor targets(Shape{3}, {2.0f, 1.0f, 3.0f});
  EXPECT_LT(lik.log_predictive(stacked, targets).item(), 0.0f);
}

}  // namespace
}  // namespace tyxe
