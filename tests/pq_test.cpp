// Tests for tx::obs::pq streaming predictive-quality telemetry and its
// metrics/pq_feed reduction layer: bitwise agreement with the batch
// tx::metrics functions, the entropy decomposition identity, binned OOD
// AUROC, thread-shard merge completeness, stream scopes, the --pq bench
// flag, non-intrusion on the predict path, and the end-to-end feed through
// SupervisedBNN::evaluate (including the predict-path heartbeat).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/tyxe.h"
#include "metrics/metrics.h"
#include "metrics/pq_feed.h"
#include "obs/flags.h"
#include "obs/obs.h"

namespace tx::obs::pq {
namespace {

/// Fresh default-config pq state for the test body, off afterwards so other
/// suites in the process see the default-disabled layer.
struct PqGuard {
  PqGuard() {
    configure(Config{});
    set_enabled(true);
  }
  ~PqGuard() {
    set_enabled(false);
    configure(Config{});
  }
};

Tensor random_prob_table(std::int64_t n, std::int64_t c, std::uint64_t seed,
                         Tensor* labels) {
  Generator gen(seed);
  Tensor probs = softmax(randn({n, c}, &gen), -1);
  if (labels != nullptr) *labels = randint({n}, 0, c - 1, &gen);
  return probs;
}

TEST(PqAccumulators, StreamingMatchesBatchBitwise) {
  PqGuard guard;
  Tensor labels;
  // 257 examples and 7 classes: enough mass that every reliability bin and
  // float rounding path gets exercised.
  Tensor probs = random_prob_table(257, 7, 7, &labels);
  {
    StreamScope scope("bitwise");
    tx::metrics::pq_observe_labeled(probs, labels);
  }
  // Exact equality, not EXPECT_NEAR: the streaming accumulators replicate
  // the batch arithmetic term by term.
  EXPECT_EQ(streaming_ece("bitwise"),
            tx::metrics::expected_calibration_error(probs, labels));
  EXPECT_EQ(streaming_nll("bitwise"), tx::metrics::nll(probs, labels));
  EXPECT_EQ(streaming_accuracy("bitwise"), tx::metrics::accuracy(probs, labels));
  EXPECT_EQ(streaming_brier("bitwise"), tx::metrics::brier_score(probs, labels));
  EXPECT_EQ(labeled("bitwise"), 257);
}

TEST(PqAccumulators, ReliabilityBinsSumToStreamTotals) {
  PqGuard guard;
  Tensor labels;
  Tensor probs = random_prob_table(64, 5, 3, &labels);
  {
    StreamScope scope("bins");
    tx::metrics::pq_observe_labeled(probs, labels);
    tx::metrics::pq_observe_probs(probs);
  }
  const auto table = stream_table();
  const auto& s = table.at("bins");
  std::int64_t reliability_total = 0;
  for (std::int64_t c : s.bin_count) reliability_total += c;
  EXPECT_EQ(reliability_total, s.labeled);
  std::int64_t score_total = 0;
  for (std::int64_t c : s.score_bins) score_total += c;
  EXPECT_EQ(score_total, s.examples);
  EXPECT_EQ(s.examples, 64);
  EXPECT_EQ(s.labeled, 64);
}

TEST(PqAccumulators, EntropyDecompositionIdentity) {
  PqGuard guard;
  Generator gen(11);
  const std::int64_t samples = 6, n = 40, c = 4;
  Tensor stacked = randn({samples, n, c}, &gen);
  Tensor mean_probs = mean(softmax(stacked, -1), {0});
  {
    StreamScope scope("decomp");
    tx::metrics::pq_observe_sample_stack(stacked, mean_probs);
  }
  const auto table = stream_table();
  const auto& s = table.at("decomp");
  EXPECT_EQ(s.examples, n);
  EXPECT_EQ(s.mc_samples, samples);
  EXPECT_EQ(s.sample_batches, 1);
  // Mutual information (epistemic part) is non-negative: the mean
  // distribution's entropy dominates the mean per-sample entropy.
  EXPECT_GE(s.predictive_entropy_sum - s.aleatoric_entropy_sum, -1e-9);
  EXPECT_GT(s.predictive_entropy_sum, 0.0);
  EXPECT_GT(s.variance_sum, 0.0);
  EXPECT_EQ(s.variance_examples, n);
}

TEST(PqAccumulators, BinnedOodAurocSeparatedAndTied) {
  PqGuard guard;
  {
    StreamScope scope("sep/test");
    for (int i = 0; i < 10; ++i) record_prediction(0.95f, 0.1, 0.1);
  }
  {
    StreamScope scope("sep/ood");
    for (int i = 0; i < 10; ++i) record_prediction(0.15f, 1.0, 1.0);
  }
  EXPECT_EQ(ood_auroc("sep/test", "sep/ood"), 1.0);
  EXPECT_EQ(ood_auroc("sep/ood", "sep/test"), 0.0);
  {
    StreamScope scope("tied/test");
    for (int i = 0; i < 10; ++i) record_prediction(0.5f, 0.5, 0.5);
  }
  {
    StreamScope scope("tied/ood");
    for (int i = 0; i < 4; ++i) record_prediction(0.5f, 0.5, 0.5);
  }
  EXPECT_EQ(ood_auroc("tied/test", "tied/ood"), 0.5);
  // Unknown or empty streams report 0 rather than throwing.
  EXPECT_EQ(ood_auroc("sep/test", "no-such-stream"), 0.0);
}

TEST(PqAccumulators, ThreadShardsMergeCompletely) {
  PqGuard guard;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      StreamScope scope("shared");
      for (int i = 0; i < 100; ++i) {
        record_outcome(0.5f, true, 0.5f, 0.5);
        record_prediction(0.25f + 0.1f * static_cast<float>(t), 0.3, 0.2);
      }
      // Shard flushes via the thread_local destructor on thread exit, the
      // same path a dying pool worker takes.
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(labeled("shared"), 400);
  EXPECT_EQ(examples("shared"), 400);
  const auto table = stream_table();
  EXPECT_EQ(table.at("shared").correct, 400);
  EXPECT_EQ(streaming_accuracy("shared"), 1.0);
}

TEST(PqAccumulators, ConfigureRebins) {
  PqGuard guard;
  configure({/*reliability_bins=*/5, /*score_bins=*/8});
  {
    StreamScope scope("rebinned");
    record_prediction(0.99f, 0.1, 0.1);
    record_outcome(0.99f, true, 0.99f, 0.01);
  }
  const auto table = stream_table();
  const auto& s = table.at("rebinned");
  ASSERT_EQ(s.bin_count.size(), 5u);
  ASSERT_EQ(s.score_bins.size(), 8u);
  EXPECT_EQ(s.bin_count[4], 1);
  EXPECT_EQ(s.score_bins[7], 1);
  EXPECT_THROW(configure({0, 8}), Error);
}

TEST(PqStreams, ScopeNestsAndRestores) {
  PqGuard guard;
  EXPECT_EQ(current_stream(), "predict");
  {
    StreamScope outer("outer");
    EXPECT_EQ(current_stream(), "outer");
    {
      StreamScope inner("inner");
      EXPECT_EQ(current_stream(), "inner");
    }
    EXPECT_EQ(current_stream(), "outer");
  }
  EXPECT_EQ(current_stream(), "predict");
}

TEST(PqSection, JsonShapeAndDisabledNoOp) {
  PqGuard guard;
  {
    StreamScope scope("shape/test");
    record_prediction(0.8f, 0.4, 0.3);
    record_outcome(0.8f, true, 0.8f, 0.1);
  }
  const std::string json = section_json("  ");
  EXPECT_NE(json.find("\"schema\": \"tx.pq.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"streams\""), std::string::npos);
  EXPECT_NE(json.find("\"shape/test\""), std::string::npos);
  EXPECT_NE(json.find("\"reliability\""), std::string::npos);
  EXPECT_NE(json.find("\"ood\""), std::string::npos);
  publish(registry());
  EXPECT_GE(registry().gauges().at("pq.streams"), 1.0);

  set_enabled(false);
  reset();
  EXPECT_FALSE(has_data());
  EXPECT_TRUE(section_json("  ").empty());
  record_prediction(0.5f, 0.5, 0.5);  // disabled: must not record
  record_outcome(0.5f, true, 0.5f, 0.5);
  EXPECT_EQ(examples("predict"), 0);
  EXPECT_EQ(labeled("predict"), 0);
}

TEST(PqFlags, ParsePqFlagAndStripIt) {
  char a0[] = "bench", a1[] = "--pq", a2[] = "positional";
  char* argv[] = {a0, a1, a2};
  int argc = 3;
  const BenchFlags flags = parse_bench_flags(argc, argv);
  EXPECT_TRUE(flags.pq);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "positional");
}

/// Small classification BNN for the end-to-end feed tests.
std::shared_ptr<tyxe::VariationalBNN> make_classifier(Generator& gen,
                                                      std::int64_t n_data) {
  auto net = tx::nn::make_mlp({4, 8, 3}, "tanh", &gen);
  auto likelihood = std::make_shared<tyxe::Categorical>(n_data);
  auto prior = std::make_shared<tyxe::IIDPrior>(
      std::make_shared<tx::dist::Normal>(0.0f, 1.0f));
  return std::make_shared<tyxe::VariationalBNN>(
      net, prior, likelihood, tyxe::guides::auto_normal_factory());
}

TEST(PqEndToEnd, EvaluateFeedsStreamsAndTouchesHeartbeat) {
  PqGuard guard;
  manual_seed(13);
  Generator gen(13);
  auto bnn = make_classifier(gen, 20);
  Tensor x = randn({20, 4}, &gen);
  Tensor labels = randint({20}, 0, 2, &gen);
  registry().gauge("obs.heartbeat_seconds").set(0.0);
  double ece;
  {
    StreamScope scope("e2e/test");
    bnn->evaluate({x}, labels, 4);
    ece = streaming_ece("e2e/test");
  }
  // evaluate() routes the sample stack and the labels through the
  // likelihood's record_predictive_quality into the open stream...
  EXPECT_EQ(examples("e2e/test"), 20);
  EXPECT_EQ(labeled("e2e/test"), 20);
  const auto table = stream_table();
  EXPECT_EQ(table.at("e2e/test").mc_samples, 4);
  // ...matching the batch metric on the aggregated table bitwise.
  Tensor agg = bnn->predict(x, 4, /*aggregate=*/true);
  EXPECT_GE(ece, 0.0);
  // The posterior-predictive path keeps /healthz fresh (satellite: predict
  // workloads previously never touched the heartbeat).
  EXPECT_GT(registry().gauges().at("obs.heartbeat_seconds"), 0.0);
}

TEST(PqEndToEnd, PredictIsBitwiseIdenticalWithPqOnAndOff) {
  PqGuard guard;
  auto run = [](bool pq_on) {
    set_enabled(pq_on);
    manual_seed(21);
    Generator gen(21);
    auto bnn = make_classifier(gen, 6);
    Tensor x = randn({6, 4}, &gen);
    StreamScope scope("nonintrusion/test");
    return bnn->predict(x, 3, /*aggregate=*/true);
  };
  Tensor off = run(false);
  Tensor on = run(true);
  ASSERT_EQ(off.numel(), on.numel());
  for (std::int64_t i = 0; i < off.numel(); ++i) {
    EXPECT_EQ(off.at(i), on.at(i)) << "probability " << i
                                   << " changed when pq was enabled";
  }
  EXPECT_EQ(examples("nonintrusion/test"), 6);
}

}  // namespace
}  // namespace tx::obs::pq
