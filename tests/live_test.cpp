// Tests for the live telemetry plane: Prometheus text rendering, /healthz
// staleness logic, the tx.manifest.v1 run manifest (including the provider
// registrations from tx::simd / tx::alloc / tx::par), the TYXE_* environment
// audit, and the HTTP server end to end over a real loopback socket.
#include "obs/live.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "obs/event_sink.h"
#include "obs/hist.h"
#include "obs/manifest.h"
#include "obs/registry.h"
#include "obs/timer.h"
#include "par/pool.h"
#include "tensor/alloc.h"
#include "tensor/simd.h"
#include "util/env.h"

namespace {

using tx::obs::registry;

class LiveTest : public ::testing::Test {
 protected:
  void SetUp() override { registry().clear(); }
  void TearDown() override { registry().clear(); }
};

/// Minimal HTTP GET over loopback; returns the full response (headers+body).
std::string http_get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

// --- Manifest (providers must still be registered: run these first, before
// --- any reset_for_testing call wipes the static registrations).

TEST_F(LiveTest, ManifestIncludesProviderFields) {
  // Touch the provider TUs so the linker keeps their registrars.
  (void)tx::par::num_threads();
  (void)tx::simd::level_name();
  (void)tx::alloc::enabled();
  const std::string doc = tx::obs::manifest::json();
  EXPECT_NE(doc.find("\"schema\": \"tx.manifest.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"git_sha\": \""), std::string::npos);
  EXPECT_NE(doc.find("\"build_type\": \""), std::string::npos);
  EXPECT_NE(doc.find("\"simd_level\": \""), std::string::npos);
  EXPECT_NE(doc.find("\"threads\": "), std::string::npos);
  EXPECT_NE(doc.find("\"arena\": \""), std::string::npos);
  EXPECT_NE(doc.find("\"arena_cap_mb\": "), std::string::npos);
  // Full env table with defaults.
  EXPECT_NE(doc.find("\"TYXE_SIMD\""), std::string::npos);
  EXPECT_NE(doc.find("\"TYXE_NUM_THREADS\""), std::string::npos);
  EXPECT_NE(doc.find("\"unknown_env\": ["), std::string::npos);
}

TEST_F(LiveTest, SnapshotEmbedsManifestSection) {
  registry().counter("svi.steps").add(3);
  const std::string doc =
      tx::obs::EventSink::render_snapshot_json("live_test");
  EXPECT_NE(doc.find("\"schema\": \"tx.obs.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"manifest\": {"), std::string::npos);
  EXPECT_NE(doc.find("\"tx.manifest.v1\""), std::string::npos);
}

TEST_F(LiveTest, ManifestSetFieldAndLateProvider) {
  tx::obs::manifest::reset_for_testing();
  tx::obs::manifest::set_field("seed", std::int64_t{42});
  tx::obs::manifest::capture();
  // Providers registered after capture publish immediately.
  tx::obs::manifest::register_provider(
      [] { tx::obs::manifest::set_field("late", std::string("yes")); });
  const std::string doc = tx::obs::manifest::json();
  EXPECT_NE(doc.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(doc.find("\"late\": \"yes\""), std::string::npos);
}

// --- Environment audit.

TEST_F(LiveTest, EnvRegistryKnowsTheKnobs) {
  EXPECT_TRUE(tx::env::is_known("TYXE_NUM_THREADS"));
  EXPECT_TRUE(tx::env::is_known("TYXE_SIMD"));
  EXPECT_TRUE(tx::env::is_known("TYXE_OBS_HTTP"));
  EXPECT_FALSE(tx::env::is_known("TYXE_TREADS"));  // the typo this catches
  EXPECT_GE(tx::env::known_vars().size(), 10u);
}

TEST_F(LiveTest, EnvAuditFlagsUnknownVars) {
  ::setenv("TYXE_DEFINITELY_A_TYPO", "1", 1);
  const auto unknown = tx::env::unknown_set_vars();
  bool found = false;
  for (const auto& name : unknown) {
    if (name == "TYXE_DEFINITELY_A_TYPO") found = true;
    EXPECT_FALSE(tx::env::is_known(name)) << name;
  }
  EXPECT_TRUE(found);
  // The unknown variable also lands in the manifest.
  const std::string doc = tx::obs::manifest::json();
  EXPECT_NE(doc.find("\"TYXE_DEFINITELY_A_TYPO\""), std::string::npos);
  ::unsetenv("TYXE_DEFINITELY_A_TYPO");
}

// --- Prometheus rendering.

TEST_F(LiveTest, PrometheusNameSanitization) {
  EXPECT_EQ(tx::obs::live::prometheus_name("svi.steps"), "tx_svi_steps");
  EXPECT_EQ(tx::obs::live::prometheus_name("span.fit/step"),
            "tx_span_fit_step");
  EXPECT_EQ(tx::obs::live::prometheus_name("a-b c"), "tx_a_b_c");
}

TEST_F(LiveTest, PrometheusRendersAllMetricKinds) {
  auto& reg = registry();
  reg.counter("svi.steps").add(7);
  reg.gauge("svi.loss").set(1.25);
  reg.log_histogram("svi.step_seconds").record(0.01);
  reg.log_histogram("svi.step_seconds").record(0.02);
  const std::string text = tx::obs::live::render_prometheus(reg);

  EXPECT_NE(text.find("# TYPE tx_svi_steps counter\ntx_svi_steps 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tx_svi_loss gauge\ntx_svi_loss 1.25\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tx_svi_step_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("tx_svi_step_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("tx_svi_step_seconds_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("tx_svi_step_seconds_sum "), std::string::npos);
}

TEST_F(LiveTest, PrometheusBucketsAreCumulative) {
  auto& reg = registry();
  auto& h = reg.log_histogram("lat");
  h.record(0.001);
  h.record(0.001);
  h.record(1.0);
  const std::string text = tx::obs::live::render_prometheus(reg);
  // Parse every le-bucket value in order; they must be non-decreasing and
  // end at the total count.
  std::int64_t prev = -1;
  std::size_t pos = 0;
  int buckets = 0;
  while ((pos = text.find("tx_lat_bucket{le=", pos)) != std::string::npos) {
    const std::size_t sp = text.find("} ", pos);
    ASSERT_NE(sp, std::string::npos);
    const std::int64_t v = std::atoll(text.c_str() + sp + 2);
    EXPECT_GE(v, prev);
    prev = v;
    ++buckets;
    pos = sp;
  }
  EXPECT_GE(buckets, 2);
  EXPECT_EQ(prev, 3);  // the +Inf bucket equals the count
}

// --- /healthz logic.

TEST_F(LiveTest, HealthzIdleWithoutHeartbeat) {
  int status = 0;
  const std::string body = tx::obs::live::render_healthz(30.0, status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"status\": \"idle\""), std::string::npos);
  // Probing health must not create the gauge.
  EXPECT_EQ(registry().gauges().count("obs.heartbeat_seconds"), 0u);
}

TEST_F(LiveTest, HealthzOkThenStale) {
  registry().gauge("obs.heartbeat_seconds").set(tx::obs::now_seconds());
  int status = 0;
  std::string body = tx::obs::live::render_healthz(30.0, status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"status\": \"ok\""), std::string::npos);

  registry().gauge("obs.heartbeat_seconds").set(tx::obs::now_seconds() - 60.0);
  body = tx::obs::live::render_healthz(30.0, status);
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("\"status\": \"stale\""), std::string::npos);
}

// --- The HTTP server end to end.

TEST_F(LiveTest, ServerServesAllEndpoints) {
  auto& reg = registry();
  reg.counter("svi.steps").add(5);
  reg.log_histogram("svi.step_seconds").record(0.05);

  tx::obs::live::Server server({0, "live_test"});
  ASSERT_TRUE(server.start());
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("tx_svi_steps 5"), std::string::npos);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\""), std::string::npos);

  const std::string snapshot = http_get(server.port(), "/snapshot");
  EXPECT_NE(snapshot.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(snapshot.find("\"schema\": \"tx.obs.v1\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"bench\": \"live_test\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"manifest\""), std::string::npos);

  const std::string manifest = http_get(server.port(), "/manifest");
  EXPECT_NE(manifest.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(manifest.find("\"tx.manifest.v1\""), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  // Scrapes were counted (4 found + 1 not-found).
  EXPECT_EQ(reg.counters().at("obs.http_requests"), 5);
  EXPECT_EQ(reg.counters().at("obs.http_not_found"), 1);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_F(LiveTest, ServerStopIsIdempotentAndRestartable) {
  tx::obs::live::Server server({0, "live_test"});
  ASSERT_TRUE(server.start());
  const int port = server.port();
  EXPECT_GT(port, 0);
  server.stop();
  server.stop();  // no-op
  EXPECT_FALSE(server.running());
  // A second server can bind a fresh ephemeral port afterwards.
  tx::obs::live::Server again({0, "live_test"});
  ASSERT_TRUE(again.start());
  EXPECT_GT(again.port(), 0);
  again.stop();
}

TEST_F(LiveTest, ServerRejectsNonGet) {
  tx::obs::live::Server server({0, "live_test"});
  ASSERT_TRUE(server.start());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req = "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string out;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(out.find("405"), std::string::npos);
  server.stop();
}

}  // namespace
