// Tests for tx::obs (metrics registry, scoped timers, JSONL event sink) and
// the ProfilingMessenger poutine, including the disabled-overhead bound the
// subsystem promises.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "dist/distributions.h"
#include "infer/infer.h"
#include "obs/obs.h"
#include "ppl/ppl.h"

namespace tx {
namespace {

/// Fresh registry state + obs enabled for every test in this file.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::registry().clear();
  }
  void TearDown() override {
    obs::set_enabled(true);
    obs::registry().clear();
    ppl::clear_param_store();
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST_F(ObsTest, CounterGaugeBasics) {
  auto& c = obs::registry().counter("test.count");
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  // Same name resolves to the same metric object.
  EXPECT_EQ(&obs::registry().counter("test.count"), &c);
  c.reset();
  EXPECT_EQ(c.value(), 0);

  auto& g = obs::registry().gauge("test.gauge");
  g.set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
  g.set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST_F(ObsTest, CounterIsThreadSafe) {
  auto& c = obs::registry().counter("test.mt");
  constexpr int kThreads = 8, kAdds = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kAdds);
}

TEST_F(ObsTest, HistogramBucketsAndSummary) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.record(0.5);
  h.record(5.0);
  h.record(50.0);
  h.record(500.0);
  h.record(5.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 5);
  ASSERT_EQ(snap.bucket_counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.bucket_counts[0], 1);
  EXPECT_EQ(snap.bucket_counts[1], 2);
  EXPECT_EQ(snap.bucket_counts[2], 1);
  EXPECT_EQ(snap.bucket_counts[3], 1);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 500.0);
  EXPECT_DOUBLE_EQ(snap.sum, 560.5);
  EXPECT_DOUBLE_EQ(snap.mean(), 112.1);
  // Quantiles come from the raw-value reservoir via util quantile_of.
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 500.0);
}

TEST_F(ObsTest, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(obs::Histogram({3.0, 1.0}), Error);
  EXPECT_THROW(obs::Histogram::exponential_bounds(0.0, 2.0, 4), Error);
}

TEST_F(ObsTest, ScopedTimerRecordsNestedSpans) {
  {
    obs::ScopedTimer outer("outer");
    EXPECT_EQ(obs::span_depth(), 1u);
    {
      obs::ScopedTimer inner("inner");
      EXPECT_EQ(obs::span_depth(), 2u);
    }
  }
  EXPECT_EQ(obs::span_depth(), 0u);
  const auto hists = obs::registry().histograms();
  ASSERT_TRUE(hists.count("span.outer"));
  ASSERT_TRUE(hists.count("span.outer/inner"));
  EXPECT_EQ(hists.at("span.outer").count, 1);
  EXPECT_EQ(hists.at("span.outer/inner").count, 1);
  EXPECT_GE(hists.at("span.outer").sum, hists.at("span.outer/inner").sum);
}

TEST_F(ObsTest, ScopedTimerDisabledRecordsNothing) {
  obs::set_enabled(false);
  {
    obs::ScopedTimer t("ghost");
    EXPECT_EQ(obs::span_depth(), 0u);
  }
  obs::set_enabled(true);
  EXPECT_EQ(obs::registry().histograms().count("span.ghost"), 0u);
}

TEST_F(ObsTest, EventJsonRendering) {
  obs::Event e;
  e.set("step", std::int64_t{3})
      .set("loss", 1.5)
      .set("phase", "warm\"up\n")
      .set("ok", true)
      .set("bad", std::nan(""));
  EXPECT_EQ(e.to_json(),
            "{\"step\": 3, \"loss\": 1.5, \"phase\": \"warm\\\"up\\n\", "
            "\"ok\": true, \"bad\": null}");
}

TEST_F(ObsTest, EscapeJsonEdgeCases) {
  // Quotes and backslashes.
  EXPECT_EQ(obs::escape_json("a\"b\\c"), "a\\\"b\\\\c");
  // Named control escapes.
  EXPECT_EQ(obs::escape_json("x\ny\rz\tw"), "x\\ny\\rz\\tw");
  // Remaining control characters render as \u00XX, including embedded NUL.
  EXPECT_EQ(obs::escape_json(std::string("a\0b", 3)), "a\\u0000b");
  EXPECT_EQ(obs::escape_json("\x01\x1f"), "\\u0001\\u001f");
  // Multi-byte UTF-8 passes through untouched (bytes >= 0x80 are not
  // control characters and must not be sign-extended into \uffXX).
  EXPECT_EQ(obs::escape_json("\xce\xbc=0.5"), "\xce\xbc=0.5");
  EXPECT_EQ(obs::escape_json(""), "");
}

TEST_F(ObsTest, EventNonFiniteValuesRenderAsNull) {
  obs::Event e;
  e.set("nan", std::nan(""))
      .set("pinf", std::numeric_limits<double>::infinity())
      .set("ninf", -std::numeric_limits<double>::infinity());
  EXPECT_EQ(e.to_json(), "{\"nan\": null, \"pinf\": null, \"ninf\": null}");
}

TEST_F(ObsTest, EventSinkBadPathIsHarmless) {
  obs::EventSink sink("/nonexistent-dir/obs_events.jsonl");
  EXPECT_FALSE(sink.ok());
  EXPECT_EQ(obs::registry().counters().at("obs.sink_errors"), 1);
  // Emitting into a failed sink is a silent no-op, never a throw.
  obs::Event e;
  e.set("step", 1);
  EXPECT_NO_THROW(sink.emit(e));
  EXPECT_EQ(sink.events_written(), 0);
  // The failure was counted once at the open, not again per emit.
  EXPECT_EQ(obs::registry().counters().at("obs.sink_errors"), 1);
}

TEST_F(ObsTest, WriteSnapshotReportsFailure) {
  EXPECT_FALSE(obs::EventSink::write_snapshot("/nonexistent-dir/BENCH_x.json",
                                              "unit_bench"));
  EXPECT_EQ(obs::registry().counters().at("obs.sink_errors"), 1);
  const std::string good = temp_path("obs_snapshot_ok.json");
  EXPECT_TRUE(obs::EventSink::write_snapshot(good, "unit_bench"));
  std::remove(good.c_str());
}

TEST_F(ObsTest, EventSinkJsonlRoundTrip) {
  const std::string path = temp_path("obs_events.jsonl");
  {
    obs::EventSink sink(path);
    for (int i = 0; i < 3; ++i) {
      obs::Event e;
      e.set("step", i).set("loss", 10.0 - i);
      sink.emit(e);
    }
    EXPECT_EQ(sink.events_written(), 3);
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"step\": " + std::to_string(lines)),
              std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST_F(ObsTest, SnapshotWritesBenchSchema) {
  obs::registry().counter("unit.count").add(7);
  obs::registry().gauge("unit.gauge").set(0.25);
  obs::registry().histogram("unit.hist", {1.0, 2.0}).record(1.5);
  const std::string path = temp_path("obs_snapshot.json");
  obs::EventSink::write_snapshot(path, "unit_bench", obs::registry(),
                                 {{"loss", {3.0, 2.0, 1.0}}});
  const std::string doc = read_file(path);
  EXPECT_NE(doc.find("\"bench\": \"unit_bench\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema\": \"tx.obs.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"unit.count\": 7"), std::string::npos);
  EXPECT_NE(doc.find("\"unit.gauge\": 0.25"), std::string::npos);
  EXPECT_NE(doc.find("\"p50\": 1.5"), std::string::npos);
  EXPECT_NE(doc.find("\"le\": \"inf\""), std::string::npos);
  EXPECT_NE(doc.find("\"loss\": [3, 2, 1]"), std::string::npos);
  // Braces balance, i.e. the document is at least structurally JSON.
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  std::remove(path.c_str());
}

/// Toy program: three latent sites, one observed site, one param.
void toy_model() {
  auto normal = std::make_shared<dist::Normal>(0.0f, 1.0f);
  ppl::sample("a", normal);
  ppl::sample("b", normal);
  ppl::sample("c", normal);
  ppl::param("theta", Tensor::scalar(1.0f));
  ppl::sample("obs", normal, Tensor::scalar(0.5f));
}

TEST_F(ObsTest, ProfilingMessengerCountsSites) {
  ppl::ProfilingMessenger prof;
  prof.run("model", toy_model);
  prof.run("model", toy_model);
  EXPECT_EQ(prof.sample_count(), 6);
  EXPECT_EQ(prof.observe_count(), 2);
  EXPECT_EQ(prof.param_count(), 2);
  EXPECT_EQ(prof.site_counts().at("a"), 2);
  EXPECT_EQ(prof.site_counts().at("obs"), 2);
  ASSERT_TRUE(prof.sections().count("model"));
  EXPECT_EQ(prof.sections().at("model").calls, 2);
  EXPECT_GE(prof.sections().at("model").seconds, 0.0);

  prof.publish("toy");
  EXPECT_EQ(obs::registry().counters().at("toy.sample_sites"), 6);
  EXPECT_EQ(obs::registry().counters().at("toy.observe_sites"), 2);
  EXPECT_EQ(obs::registry().counters().at("toy.param_sites"), 2);

  prof.reset();
  EXPECT_EQ(prof.sample_count(), 0);
  EXPECT_TRUE(prof.site_counts().empty());
}

TEST_F(ObsTest, ProfilingMessengerSeesNothingOutsideScope) {
  ppl::ProfilingMessenger prof;
  toy_model();  // not under the profiler
  EXPECT_EQ(prof.sample_count(), 0);
  EXPECT_EQ(prof.param_count(), 0);
}

/// The acceptance bound: with the runtime switch off, running a model under
/// full instrumentation (timer span + profiler attached) costs < 5% over the
/// bare model. Best-of-N timing on both sides to shake scheduler noise.
TEST_F(ObsTest, DisabledInstrumentationOverheadUnderFivePercent) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "timing bound is for plain builds; sanitizers dilate it";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "timing bound is for plain builds; sanitizers dilate it";
#endif
#endif
  constexpr int kIters = 300, kRepeats = 7;
  auto time_best_of = [&](const std::function<void()>& fn) {
    double best = 1e300;
    for (int r = 0; r < kRepeats; ++r) {
      const double t0 = obs::now_seconds();
      for (int i = 0; i < kIters; ++i) fn();
      best = std::min(best, obs::now_seconds() - t0);
    }
    return best;
  };

  obs::set_enabled(false);
  ppl::ProfilingMessenger prof;
  const double bare = time_best_of([] { toy_model(); });
  const double instrumented = time_best_of([&] {
    obs::ScopedTimer span("overhead.model");
    ppl::ProfilingScope scope(prof);
    toy_model();
  });
  obs::set_enabled(true);

  // 5% relative plus a 50us absolute floor so a sub-microsecond toy model on
  // a noisy machine cannot flake the suite.
  EXPECT_LT(instrumented, bare * 1.05 + 50e-6)
      << "bare=" << bare << "s instrumented=" << instrumented << "s";
}

TEST_F(ObsTest, SviEmitsMetricsAndCallback) {
  ppl::clear_param_store();
  auto model = [] {
    ppl::sample("z", std::make_shared<dist::Normal>(0.0f, 1.0f),
                Tensor::scalar(0.3f));
  };
  auto guide = [] {};
  auto svi = infer::SVI(model, guide,
                        std::make_shared<infer::Adam>(1e-2),
                        std::make_shared<infer::TraceELBO>());
  std::vector<infer::SVIStepInfo> seen;
  svi.set_step_callback([&](const infer::SVIStepInfo& s) { seen.push_back(s); });
  for (int i = 0; i < 3; ++i) svi.step();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].step, 0);
  EXPECT_EQ(seen[2].step, 2);
  EXPECT_GT(seen[0].seconds, 0.0);
  EXPECT_EQ(obs::registry().counters().at("svi.steps"), 3);
  EXPECT_EQ(obs::registry().histograms().at("svi.step_seconds").count, 3);
  EXPECT_DOUBLE_EQ(obs::registry().gauges().at("svi.loss"), seen[2].loss);
}

}  // namespace
}  // namespace tx
