// Tests for prior classes and hide/expose filtering.
#include <gtest/gtest.h>

#include "core/priors.h"
#include "nn/nn.h"

namespace tyxe {
namespace {

namespace nd = tx::dist;

TEST(HideExpose, DefaultEverythingBayesian) {
  HideExpose f;
  EXPECT_FALSE(f.hidden("net.fc.weight", "fc", "Linear", "weight"));
}

TEST(HideExpose, HideAll) {
  HideExpose f;
  f.hide_all = true;
  EXPECT_TRUE(f.hidden("net.fc.weight", "fc", "Linear", "weight"));
}

TEST(HideExpose, HideByModuleType) {
  HideExpose f;
  f.hide_module_types = {"BatchNorm2d"};
  EXPECT_TRUE(f.hidden("net.bn1.weight", "bn1", "BatchNorm2d", "weight"));
  EXPECT_FALSE(f.hidden("net.conv1.weight", "conv1", "Conv2d", "weight"));
}

TEST(HideExpose, ExposeIsWhitelist) {
  HideExpose f;
  f.expose_modules = {"fc"};
  EXPECT_FALSE(f.hidden("net.fc.weight", "fc", "Linear", "weight"));
  EXPECT_TRUE(f.hidden("net.conv1.weight", "conv1", "Conv2d", "weight"));
}

TEST(HideExpose, HideBeatsExpose) {
  HideExpose f;
  f.expose_modules = {"fc"};
  f.hide_parameters = {"bias"};
  EXPECT_TRUE(f.hidden("net.fc.bias", "fc", "Linear", "bias"));
  EXPECT_FALSE(f.hidden("net.fc.weight", "fc", "Linear", "weight"));
}

TEST(HideExpose, FullSiteNames) {
  HideExpose f;
  f.hide = {"net.fc.weight"};
  EXPECT_TRUE(f.hidden("net.fc.weight", "fc", "Linear", "weight"));
  f = HideExpose{};
  f.expose = {"net.fc.weight"};
  EXPECT_FALSE(f.hidden("net.fc.weight", "fc", "Linear", "weight"));
  EXPECT_TRUE(f.hidden("net.other", "", "Linear", "other"));
}

TEST(HideExpose, ExposeParametersByLocalName) {
  HideExpose f;
  f.expose_parameters = {"weight"};
  EXPECT_FALSE(f.hidden("net.a.weight", "a", "Linear", "weight"));
  EXPECT_TRUE(f.hidden("net.a.bias", "a", "Linear", "bias"));
}

TEST(IIDPrior, ExpandsToParamShape) {
  IIDPrior prior(std::make_shared<nd::Normal>(0.0f, 1.0f));
  auto d = prior.prior_dist("w", {3, 4}, tx::zeros({3, 4}));
  EXPECT_EQ(d->shape(), (tx::Shape{3, 4}));
  EXPECT_EQ(d->name(), "Normal");
}

TEST(LayerwiseNormalPrior, FanBasedStd) {
  LayerwiseNormalPrior prior("radford");
  auto d = prior.prior_dist("w", {8, 4}, tx::zeros({8, 4}));
  auto* n = dynamic_cast<nd::Normal*>(d.get());
  ASSERT_NE(n, nullptr);
  EXPECT_NEAR(n->scale().at(0), 0.5f, 1e-6);  // 1/sqrt(4)
  LayerwiseNormalPrior kaiming("kaiming");
  auto dk = kaiming.prior_dist("w", {8, 2}, tx::zeros({8, 2}));
  EXPECT_NEAR(dynamic_cast<nd::Normal*>(dk.get())->scale().at(0), 1.0f, 1e-6);
  LayerwiseNormalPrior bogus("bogus");
  EXPECT_THROW(bogus.prior_dist("w", {2, 2}, tx::zeros({2, 2})), tx::Error);
}

TEST(DictPrior, LooksUpAndValidates) {
  std::map<std::string, nd::DistPtr> dists;
  dists["w"] = std::make_shared<nd::Normal>(tx::zeros({2}), tx::ones({2}));
  DictPrior prior(dists);
  EXPECT_EQ(prior.prior_dist("w", {2}, tx::zeros({2}))->shape(), (tx::Shape{2}));
  EXPECT_THROW(prior.prior_dist("missing", {2}, tx::zeros({2})), tx::Error);
  EXPECT_THROW(prior.prior_dist("w", {3}, tx::zeros({3})), tx::Error);
}

TEST(LambdaPrior, CustomFunction) {
  LambdaPrior prior([](const std::string& name, const tx::Shape& shape,
                       const tx::Tensor& value) -> nd::DistPtr {
    (void)name;
    // Prior centred at the current (pretrained) value.
    return std::make_shared<nd::Normal>(value, tx::full(shape, 0.5f));
  });
  tx::Tensor v(tx::Shape{2}, {1.0f, -1.0f});
  auto d = prior.prior_dist("w", {2}, v);
  EXPECT_TRUE(tx::allclose(dynamic_cast<nd::Normal*>(d.get())->loc(), v));
}

TEST(ScaleMixturePriorIntegration, UsableAsIIDBase) {
  IIDPrior prior(
      std::make_shared<nd::ScaleMixtureNormal>(tx::Shape{}, 0.5f, 1.0f, 0.01f));
  auto d = prior.prior_dist("w", {4, 4}, tx::zeros({4, 4}));
  EXPECT_EQ(d->shape(), (tx::Shape{4, 4}));
  // Heavier peak at zero than a unit normal.
  nd::Normal unit(tx::zeros({4, 4}), tx::ones({4, 4}));
  EXPECT_GT(d->log_prob_sum(tx::zeros({4, 4})).item(),
            unit.log_prob_sum(tx::zeros({4, 4})).item());
}

}  // namespace
}  // namespace tyxe
