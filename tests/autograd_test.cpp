// Autograd tests: engine behaviour plus finite-difference gradient checks
// across the whole op surface (parameterized property sweep).
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/grad_check.h"
#include "tensor/tensor.h"

namespace tx {
namespace {

TEST(Autograd, SimpleChain) {
  Tensor x = Tensor::scalar(2.0f).set_requires_grad(true);
  Tensor y = x * x * x;  // y = x^3, dy/dx = 3x^2 = 12
  y.backward();
  EXPECT_NEAR(x.grad().item(), 12.0f, 1e-5);
}

TEST(Autograd, FanOutAccumulates) {
  Tensor x = Tensor::scalar(3.0f).set_requires_grad(true);
  Tensor y = x * x + x * 2.0f;  // dy/dx = 2x + 2 = 8
  y.backward();
  EXPECT_NEAR(x.grad().item(), 8.0f, 1e-5);
}

TEST(Autograd, RepeatedBackwardAccumulates) {
  Tensor x = Tensor::scalar(1.0f).set_requires_grad(true);
  (x * 3.0f).backward();
  (x * 3.0f).backward();
  EXPECT_NEAR(x.grad().item(), 6.0f, 1e-5);
  x.zero_grad();
  EXPECT_FALSE(x.has_grad());
}

TEST(Autograd, NoGradGuardStopsRecording) {
  Tensor x = Tensor::scalar(2.0f).set_requires_grad(true);
  Tensor y;
  {
    NoGradGuard ng;
    y = x * x;
  }
  EXPECT_TRUE(y.is_leaf());
  EXPECT_FALSE(y.requires_grad());
}

TEST(Autograd, DetachCutsGraph) {
  Tensor x = Tensor::scalar(2.0f).set_requires_grad(true);
  Tensor y = (x * x).detach() * x;  // treated as 4 * x
  y.backward();
  EXPECT_NEAR(x.grad().item(), 4.0f, 1e-5);
}

TEST(Autograd, CloneIsDifferentiable) {
  Tensor x = Tensor::scalar(2.0f).set_requires_grad(true);
  Tensor y = x.clone() * 3.0f;
  y.backward();
  EXPECT_NEAR(x.grad().item(), 3.0f, 1e-5);
}

TEST(Autograd, NonScalarBackwardThrows) {
  Tensor x = Tensor(Shape{2}, {1.0f, 2.0f}).set_requires_grad(true);
  Tensor y = x * 2.0f;
  EXPECT_THROW(y.backward(), Error);
}

TEST(Autograd, BroadcastGradientsReduceCorrectly) {
  Tensor a = Tensor(Shape{2, 1}, {1.0f, 2.0f}).set_requires_grad(true);
  Tensor b = Tensor(Shape{3}, {1.0f, 1.0f, 1.0f}).set_requires_grad(true);
  sum(a * b).backward();
  // d/da sums over the broadcast 3-column axis.
  EXPECT_NEAR(a.grad().at(0), 3.0f, 1e-5);
  EXPECT_NEAR(b.grad().at(0), 3.0f, 1e-5);  // 1 + 2
}

TEST(Autograd, InPlaceOnGraphTensorThrows) {
  Tensor x = Tensor::scalar(1.0f).set_requires_grad(true);
  Tensor y = x * 2.0f;
  EXPECT_THROW(y.add_(Tensor::scalar(1.0f)), Error);
  EXPECT_THROW(y.fill_(0.0f), Error);
}

TEST(Autograd, SetRequiresGradOnNonLeafThrows) {
  Tensor x = Tensor::scalar(1.0f).set_requires_grad(true);
  Tensor y = x * 2.0f;
  EXPECT_THROW(y.set_requires_grad(false), Error);
}

// ---- finite-difference sweep over unary ops --------------------------------

struct UnaryCase {
  std::string name;
  std::function<Tensor(const Tensor&)> fn;
  float lo, hi;  // input sampling range (keeps domains valid)
};

class UnaryGradCheck : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradCheck, MatchesFiniteDifferences) {
  const auto& c = GetParam();
  Generator gen(7);
  Tensor x = rand_uniform({3, 4}, c.lo, c.hi, &gen);
  auto scalar_fn = [&](const std::vector<Tensor>& in) {
    return sum(c.fn(in[0]));
  };
  EXPECT_TRUE(grad_check(scalar_fn, {x})) << "op: " << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradCheck,
    ::testing::Values(
        UnaryCase{"neg", [](const Tensor& t) { return neg(t); }, -2.0f, 2.0f},
        UnaryCase{"exp", [](const Tensor& t) { return exp(t); }, -1.0f, 1.0f},
        UnaryCase{"log", [](const Tensor& t) { return log(t); }, 0.5f, 3.0f},
        UnaryCase{"sqrt", [](const Tensor& t) { return sqrt(t); }, 0.5f, 3.0f},
        UnaryCase{"square", [](const Tensor& t) { return square(t); }, -2.0f, 2.0f},
        UnaryCase{"tanh", [](const Tensor& t) { return tanh(t); }, -2.0f, 2.0f},
        UnaryCase{"sigmoid", [](const Tensor& t) { return sigmoid(t); }, -3.0f, 3.0f},
        UnaryCase{"relu", [](const Tensor& t) { return relu(t); }, 0.2f, 2.0f},
        UnaryCase{"softplus", [](const Tensor& t) { return softplus(t); }, -2.0f, 2.0f},
        UnaryCase{"sin", [](const Tensor& t) { return sin(t); }, -2.0f, 2.0f},
        UnaryCase{"cos", [](const Tensor& t) { return cos(t); }, -2.0f, 2.0f},
        UnaryCase{"erf", [](const Tensor& t) { return erf(t); }, -1.5f, 1.5f},
        UnaryCase{"pow2.5", [](const Tensor& t) { return pow_scalar(t, 2.5f); }, 0.5f, 2.0f},
        UnaryCase{"clamp", [](const Tensor& t) { return clamp(t, -0.5f, 0.5f); }, -2.0f, 2.0f},
        UnaryCase{"clamp_max", [](const Tensor& t) { return clamp_max(t, 0.3f); }, -1.0f, 1.0f}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      std::string n = info.param.name;
      for (auto& ch : n) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return n;
    });

// ---- finite-difference sweep over binary ops with broadcasting -------------

struct BinaryCase {
  std::string name;
  std::function<Tensor(const Tensor&, const Tensor&)> fn;
  Shape sa, sb;
};

class BinaryGradCheck : public ::testing::TestWithParam<BinaryCase> {};

TEST_P(BinaryGradCheck, MatchesFiniteDifferences) {
  const auto& c = GetParam();
  Generator gen(11);
  Tensor a = rand_uniform(c.sa, 0.5f, 2.0f, &gen);
  Tensor b = rand_uniform(c.sb, 0.5f, 2.0f, &gen);
  auto scalar_fn = [&](const std::vector<Tensor>& in) {
    return sum(c.fn(in[0], in[1]));
  };
  EXPECT_TRUE(grad_check(scalar_fn, {a, b})) << "op: " << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBinaryOps, BinaryGradCheck,
    ::testing::Values(
        BinaryCase{"add_same", [](const Tensor& a, const Tensor& b) { return a + b; }, {2, 3}, {2, 3}},
        BinaryCase{"add_bcast", [](const Tensor& a, const Tensor& b) { return a + b; }, {2, 1}, {3}},
        BinaryCase{"sub_bcast", [](const Tensor& a, const Tensor& b) { return a - b; }, {4}, {2, 4}},
        BinaryCase{"mul_same", [](const Tensor& a, const Tensor& b) { return a * b; }, {2, 3}, {2, 3}},
        BinaryCase{"mul_scalar_b", [](const Tensor& a, const Tensor& b) { return a * b; }, {2, 3}, {}},
        BinaryCase{"div_same", [](const Tensor& a, const Tensor& b) { return a / b; }, {2, 3}, {2, 3}},
        BinaryCase{"div_bcast", [](const Tensor& a, const Tensor& b) { return a / b; }, {2, 3}, {3}},
        BinaryCase{"maximum", [](const Tensor& a, const Tensor& b) { return maximum(a, b); }, {2, 3}, {2, 3}},
        BinaryCase{"minimum", [](const Tensor& a, const Tensor& b) { return minimum(a, b); }, {2, 3}, {2, 3}}),
    [](const ::testing::TestParamInfo<BinaryCase>& info) {
      return info.param.name;
    });

// ---- structural / reduction / linalg / conv grads --------------------------

TEST(GradCheck, Reductions) {
  Generator gen(3);
  Tensor x = rand_uniform({2, 3, 2}, -1.0f, 1.0f, &gen);
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) { return sum(in[0]); }, {x}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) { return mean(in[0]); }, {x}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) { return sum(mean(in[0], {1})); }, {x}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(sum(in[0], {0, 2}, true));
      },
      {x}));
}

TEST(GradCheck, MaxLogsumexpSoftmax) {
  Generator gen(5);
  Tensor x = rand_uniform({3, 4}, -1.0f, 1.0f, &gen);
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) { return sum(max(in[0], 1)); }, {x}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) { return sum(logsumexp(in[0], -1)); },
      {x}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(softmax(in[0], -1)));
      },
      {x}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(log_softmax(in[0], -1)));
      },
      {x}));
}

TEST(GradCheck, Cumsum) {
  Generator gen(9);
  Tensor x = rand_uniform({2, 4}, -1.0f, 1.0f, &gen);
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(cumsum(in[0], 1)));
      },
      {x}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(cumsum(in[0], 0)));
      },
      {x}));
}

TEST(GradCheck, ShapeOps) {
  Generator gen(13);
  Tensor x = rand_uniform({2, 6}, -1.0f, 1.0f, &gen);
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(reshape(in[0], {3, 4})));
      },
      {x}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(transpose(in[0], 0, 1)));
      },
      {x}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(slice(in[0], 1, 1, 4)));
      },
      {x}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(index_select(in[0], 1, {0, 0, 5})));
      },
      {x}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(broadcast_to(in[0], {3, 2, 6})));
      },
      {x}));
  Tensor a = rand_uniform({2, 3}, -1.0f, 1.0f, &gen);
  Tensor b = rand_uniform({2, 2}, -1.0f, 1.0f, &gen);
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(cat({in[0], in[1]}, 1)));
      },
      {a, b}));
}

TEST(GradCheck, GatherLast) {
  Generator gen(17);
  Tensor x = rand_uniform({4, 3}, -1.0f, 1.0f, &gen);
  Tensor idx(Shape{4}, {0.0f, 2.0f, 1.0f, 2.0f});
  EXPECT_TRUE(grad_check(
      [idx](const std::vector<Tensor>& in) {
        return sum(square(gather_last(in[0], idx)));
      },
      {x}));
}

TEST(GradCheck, MatmulBmmLinear) {
  Generator gen(19);
  Tensor a = rand_uniform({3, 4}, -1.0f, 1.0f, &gen);
  Tensor b = rand_uniform({4, 2}, -1.0f, 1.0f, &gen);
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(matmul(in[0], in[1])));
      },
      {a, b}));
  Tensor ba = rand_uniform({2, 2, 3}, -1.0f, 1.0f, &gen);
  Tensor bb = rand_uniform({2, 3, 2}, -1.0f, 1.0f, &gen);
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(bmm(in[0], in[1])));
      },
      {ba, bb}));
  Tensor x = rand_uniform({3, 4}, -1.0f, 1.0f, &gen);
  Tensor w = rand_uniform({2, 4}, -1.0f, 1.0f, &gen);
  Tensor bias = rand_uniform({2}, -1.0f, 1.0f, &gen);
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(linear(in[0], in[1], in[2])));
      },
      {x, w, bias}));
}

TEST(GradCheck, ConvAndPool) {
  Generator gen(23);
  Tensor x = rand_uniform({2, 2, 5, 5}, -1.0f, 1.0f, &gen);
  Tensor w = rand_uniform({3, 2, 3, 3}, -0.5f, 0.5f, &gen);
  Tensor b = rand_uniform({3}, -0.5f, 0.5f, &gen);
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(conv2d(in[0], in[1], in[2], 1, 1)));
      },
      {x, w, b}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(conv2d(in[0], in[1], Tensor(), 2, 1)));
      },
      {x, w}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(max_pool2d(in[0], 2, 2)));
      },
      {x}));
  EXPECT_TRUE(grad_check(
      [](const std::vector<Tensor>& in) {
        return sum(square(avg_pool2d(in[0], 2, 2)));
      },
      {x}));
}

TEST(GradCheck, CompositeNetworkExpression) {
  // A small two-layer tanh network end to end, the exact shape used by the
  // paper's regression example.
  Generator gen(29);
  Tensor x = rand_uniform({8, 1}, -1.0f, 1.0f, &gen);
  Tensor w1 = rand_uniform({16, 1}, -0.5f, 0.5f, &gen);
  Tensor b1 = rand_uniform({16}, -0.5f, 0.5f, &gen);
  Tensor w2 = rand_uniform({1, 16}, -0.5f, 0.5f, &gen);
  Tensor b2 = rand_uniform({1}, -0.5f, 0.5f, &gen);
  EXPECT_TRUE(grad_check(
      [x](const std::vector<Tensor>& in) {
        Tensor h = tanh(linear(x, in[0], in[1]));
        Tensor y = linear(h, in[2], in[3]);
        return mean(square(y));
      },
      {w1, b1, w2, b2}));
}

}  // namespace
}  // namespace tx
