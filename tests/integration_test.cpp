// Cross-module integration tests and coverage for the extension features:
// SGLD, FixedDropoutScope (MC dropout), MultiHeadNet, convolutional BNNs
// under flipout, the low-rank guide through the BNN API, class-incremental
// split tasks, and end-to-end Bayesian GCN training.
#include <gtest/gtest.h>

#include <cmath>

#include "core/tyxe.h"
#include "data/datasets.h"
#include "graph/gcn.h"
#include "metrics/metrics.h"

namespace {

namespace nd = tx::dist;
using tx::Shape;
using tx::Tensor;

TEST(Sgld, SamplesConjugatePosterior) {
  tx::manual_seed(40);
  tx::Generator gen(40);
  // z ~ N(0,1); 10 observations at ~1.0 with sigma 0.5.
  Tensor data(Shape{10},
              {1.2f, 0.8f, 1.1f, 0.9f, 1.3f, 1.0f, 0.7f, 1.4f, 1.05f, 0.95f});
  auto model = [data] {
    Tensor z = tx::ppl::sample("z", std::make_shared<nd::Normal>(0.0f, 1.0f));
    tx::ppl::sample("x",
                    std::make_shared<nd::Normal>(
                        tx::broadcast_to(z, data.shape()),
                        tx::full(data.shape(), 0.5f)),
                    data);
  };
  float sum = 0.0f;
  for (std::int64_t i = 0; i < 10; ++i) sum += data.at(i);
  const float prec = 1.0f + 10.0f / 0.25f;
  const float post_mean = (sum / 0.25f) / prec;
  const float post_std = 1.0f / std::sqrt(prec);

  auto kernel = std::make_shared<tx::infer::SGLD>(0.02, 0.55, 10.0);
  tx::infer::MCMC mcmc(kernel, /*num_samples=*/3000, /*warmup=*/500);
  mcmc.run(model, &gen);
  auto chain = mcmc.coordinate_chain(0);
  double m = 0;
  for (double x : chain) m += x;
  m /= static_cast<double>(chain.size());
  double v = 0;
  for (double x : chain) v += (x - m) * (x - m);
  v /= static_cast<double>(chain.size());
  EXPECT_NEAR(m, post_mean, 0.05);
  EXPECT_NEAR(std::sqrt(v), post_std, 0.08);
  // SGLD accepts every proposal by construction.
  EXPECT_NEAR(mcmc.mean_accept_prob(), 1.0, 1e-9);
}

TEST(Sgld, StepSizeDecaysAndValidates) {
  tx::infer::SGLD sgld(0.1, 0.55, 10.0);
  EXPECT_NEAR(sgld.current_step_size(), 0.1 * std::pow(10.0, -0.55), 1e-9);
  EXPECT_THROW(tx::infer::SGLD(-0.1), tx::Error);
  EXPECT_THROW(tx::infer::SGLD(0.1, 2.0), tx::Error);
}

TEST(Sgld, WorksAsMcmcBnnKernel) {
  tx::manual_seed(41);
  tx::Generator gen(41);
  auto data = tx::data::make_foong_regression(16, gen);
  auto net = tx::nn::make_mlp({1, 8, 1}, "tanh", &gen);
  tyxe::MCMC_BNN bnn(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::HomoskedasticGaussian>(16, 0.1f),
      [] { return std::make_shared<tx::infer::SGLD>(1e-4); });
  bnn.fit({data.x}, data.y, 50, 50, &gen);
  Tensor pred = bnn.predict(data.x, 8, /*aggregate=*/false);
  EXPECT_EQ(pred.dim(0), 8);
}

TEST(FixedDropout, MaskRepeatsInsideScopeOnly) {
  tx::manual_seed(42);
  tx::Generator gen(42);
  tx::nn::Dropout drop(0.5f, &gen);
  Tensor x = tx::ones({200});
  {
    tx::nn::FixedDropoutScope scope(7);
    Tensor a = drop.forward(x);
    Tensor b = drop.forward(x);
    EXPECT_TRUE(tx::allclose(a, b));  // same mask across calls
  }
  Tensor c = drop.forward(x);
  Tensor d = drop.forward(x);
  EXPECT_FALSE(tx::allclose(c, d));  // fresh masks outside the scope
}

TEST(FixedDropout, DifferentSeedsAndLayersDiffer) {
  tx::manual_seed(43);
  tx::Generator gen(43);
  tx::nn::Dropout drop1(0.5f, &gen), drop2(0.5f, &gen);
  Tensor x = tx::ones({200});
  Tensor a, b, c;
  {
    tx::nn::FixedDropoutScope scope(1);
    a = drop1.forward(x);
    c = drop2.forward(x);
  }
  {
    tx::nn::FixedDropoutScope scope(2);
    b = drop1.forward(x);
  }
  EXPECT_FALSE(tx::allclose(a, b));  // seed changes the mask
  EXPECT_FALSE(tx::allclose(a, c));  // layer identity changes the mask
}

TEST(MultiHead, HeadsAreIndependentAndSwitchable) {
  tx::Generator gen(44);
  auto body = tx::nn::make_mlp({4, 8}, "relu", &gen);
  tx::nn::MultiHeadNet net(body, 8, 2, 3, &gen);
  EXPECT_EQ(net.num_heads(), 3);
  Tensor x = tx::randn({2, 4}, &gen);
  net.set_active_head(0);
  Tensor y0 = net.forward(x);
  net.set_active_head(1);
  Tensor y1 = net.forward(x);
  EXPECT_EQ(y0.shape(), (Shape{2, 2}));
  EXPECT_FALSE(tx::allclose(y0, y1));
  EXPECT_THROW(net.set_active_head(3), tx::Error);
  // All heads' parameters appear in the registry with head-scoped names.
  int head_params = 0;
  for (auto& slot : net.named_parameter_slots()) {
    if (slot.name.find("head") == 0) ++head_params;
  }
  EXPECT_EQ(head_params, 6);  // 3 heads x (weight, bias)
}

TEST(ConvBnn, FlipoutTrainsSmallCnn) {
  tx::manual_seed(45);
  tx::Generator gen(45);
  tx::data::SyntheticImageConfig cfg;
  cfg.num_classes = 2;
  cfg.per_class = 24;
  cfg.size = 8;
  cfg.noise = 0.4f;
  auto ds = tx::data::make_pattern_images(cfg, gen);
  auto net = std::make_shared<tx::nn::Sequential>();
  net->append(std::make_shared<tx::nn::Conv2d>(3, 4, 3, 1, 1, true, &gen));
  net->append(std::make_shared<tx::nn::ReLU>());
  net->append(std::make_shared<tx::nn::MaxPool2d>(2, 2));
  net->append(std::make_shared<tx::nn::Flatten>());
  net->append(std::make_shared<tx::nn::Linear>(4 * 4 * 4, 2, true, &gen));
  tyxe::VariationalBNN bnn(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::Categorical>(ds.labels.numel()),
      tyxe::guides::auto_normal_factory());
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  {
    tyxe::poutine::Flipout flip;
    bnn.fit({{{ds.images}, ds.labels}}, optim, 60);
  }
  Tensor probs = bnn.predict(ds.images, 8);
  EXPECT_GT(tx::metrics::accuracy(probs, ds.labels), 0.8);
}

TEST(ConvBnn, LocalReparamMatchesPlainEvaluation) {
  // The same fitted posterior predicts comparably with and without the
  // local-reparameterization context (Fig 1a vs 1b switch).
  tx::manual_seed(46);
  tx::Generator gen(46);
  auto data = tx::data::make_foong_regression(32, gen);
  auto net = tx::nn::make_mlp({1, 16, 1}, "tanh", &gen);
  auto lik = std::make_shared<tyxe::HomoskedasticGaussian>(32, 0.1f);
  tyxe::VariationalBNN bnn(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      lik, tyxe::guides::auto_normal_factory());
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  bnn.fit({{{data.x}, data.y}}, optim, 200);
  Tensor plain = bnn.predict(data.x, 32);
  Tensor reparam;
  {
    tyxe::poutine::LocalReparameterization lr;
    reparam = bnn.predict(data.x, 32);
  }
  const double mse_plain = lik->error(plain, data.y).item();
  const double mse_reparam = lik->error(reparam, data.y).item();
  EXPECT_NEAR(mse_plain, mse_reparam, 0.05);
}

TEST(LowRankBnn, FitsThroughBnnApi) {
  tx::manual_seed(47);
  tx::Generator gen(47);
  auto data = tx::data::make_foong_regression(32, gen);
  auto net = tx::nn::make_mlp({1, 8, 1}, "tanh", &gen);
  tyxe::VariationalBNN bnn(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::HomoskedasticGaussian>(32, 0.1f),
      tyxe::guides::auto_lowrank_factory(4, 0.05f));
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  auto [ll0, err0] = bnn.evaluate({data.x}, data.y, 8);
  bnn.fit({{{data.x}, data.y}}, optim, 300);
  auto [ll1, err1] = bnn.evaluate({data.x}, data.y, 8);
  EXPECT_LT(err1, err0);
  EXPECT_LT(err1, 0.2);
  // Marginal posteriors are exported for VCL even from the joint guide.
  auto dists = bnn.net_guide().get_detached_distributions(bnn.site_names());
  EXPECT_EQ(dists.size(), bnn.site_names().size());
}

TEST(PytorchBnnLowRank, CachedKlIsJointEstimate) {
  tx::manual_seed(48);
  tx::Generator gen(48);
  auto net = tx::nn::make_mlp({2, 4, 1}, "tanh", &gen);
  tyxe::PytorchBNN bnn(net,
                       std::make_shared<tyxe::IIDPrior>(
                           std::make_shared<nd::Normal>(0.0f, 1.0f)),
                       tyxe::guides::auto_lowrank_factory(2, 0.05f));
  Tensor x = tx::randn({3, 2}, &gen);
  bnn.forward(x);
  // log q(joint) - log p(sample): finite single-sample estimate.
  EXPECT_TRUE(std::isfinite(bnn.cached_kl_loss().item()));
}

TEST(SplitTasks, NoRelabelKeepsOriginalClassIds) {
  tx::Generator gen(49);
  tx::data::SyntheticImageConfig cfg;
  cfg.num_classes = 10;
  cfg.size = 8;
  auto tasks = tx::data::make_split_tasks(cfg, 5, 4, 4, gen, /*relabel=*/false);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    EXPECT_EQ(tasks[t].train.num_classes, 10);
    for (std::int64_t i = 0; i < tasks[t].train.labels.numel(); ++i) {
      const float y = tasks[t].train.labels.at(i);
      EXPECT_TRUE(y == static_cast<float>(2 * t) ||
                  y == static_cast<float>(2 * t + 1))
          << y;
    }
  }
}

TEST(BayesianGcn, EndToEndAboveChance) {
  tx::manual_seed(50);
  tx::Generator gen(50);
  tx::graph::SbmConfig cfg;
  cfg.num_nodes = 210;
  cfg.num_classes = 3;
  cfg.num_features = 16;
  cfg.p_intra = 0.05;
  cfg.p_inter = 0.005;
  cfg.train_per_class = 15;
  cfg.num_val = 30;
  cfg.num_test = 90;
  auto d = tx::graph::make_sbm_citation(cfg, gen);
  auto gcn = std::make_shared<tx::graph::GCN>(&d.graph, cfg.num_features, 16,
                                              3, &gen);
  tyxe::guides::AutoNormalConfig g;
  g.init_loc = tyxe::guides::init_to_value(tyxe::guides::pretrained_dict(*gcn));
  g.init_scale = 1e-4f;
  g.max_scale = 0.3f;
  tyxe::VariationalBNN bnn(
      gcn,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::Categorical>(d.graph.num_nodes()),
      tyxe::guides::auto_normal_factory(g));
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  {
    tyxe::poutine::SelectiveMask sm(d.train_mask(), {"likelihood.data"});
    bnn.fit({{{d.features}, d.labels}}, optim, 150);
  }
  Tensor probs = bnn.predict(d.features, 8);
  Tensor test_probs = tx::index_select(probs, 0, d.test_idx);
  EXPECT_GT(tx::metrics::accuracy(test_probs, d.labels_at(d.test_idx)), 0.6);
}

TEST(HandlerComposition, SelectiveMaskPlusLocalReparam) {
  // The two effect handlers compose: a masked semi-supervised fit under
  // local reparameterization runs and learns.
  tx::manual_seed(51);
  tx::Generator gen(51);
  Tensor x = tx::randn({24, 2}, &gen);
  Tensor y = tx::zeros({24});
  for (std::int64_t i = 0; i < 24; ++i) y.at(i) = x.at(i * 2) > 0 ? 1.0f : 0.0f;
  Tensor mask = tx::zeros({24});
  for (std::int64_t i = 0; i < 12; ++i) mask.at(i) = 1.0f;
  auto net = tx::nn::make_mlp({2, 8, 2}, "tanh", &gen);
  tyxe::VariationalBNN bnn(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::Categorical>(24), tyxe::guides::auto_normal_factory());
  auto optim = std::make_shared<tx::infer::Adam>(5e-2);
  {
    tyxe::poutine::SelectiveMask sm(mask, {"likelihood.data"});
    tyxe::poutine::LocalReparameterization lr;
    bnn.fit({{{x}, y}}, optim, 150);
  }
  Tensor probs = bnn.predict(x, 8);
  EXPECT_LT(bnn.likelihood().error(probs, y).item(), 0.25);
}

TEST(Vcl, CoresetStyleSnapshotRestore) {
  // The paper notes coreset fine-tuning needs "restoring the state of the
  // Pyro parameter store" — exercise that workflow.
  tx::manual_seed(52);
  tx::Generator gen(52);
  auto data = tx::data::make_foong_regression(24, gen);
  auto net = tx::nn::make_mlp({1, 8, 1}, "tanh", &gen);
  tyxe::VariationalBNN bnn(
      net,
      std::make_shared<tyxe::IIDPrior>(std::make_shared<nd::Normal>(0.0f, 1.0f)),
      std::make_shared<tyxe::HomoskedasticGaussian>(24, 0.1f),
      tyxe::guides::auto_normal_factory());
  auto optim = std::make_shared<tx::infer::Adam>(1e-2);
  bnn.fit({{{data.x}, data.y}}, optim, 100);
  auto snapshot = bnn.param_store().snapshot();
  // "Fine-tune" on a coreset, evaluate, then restore.
  Tensor coreset_x = tx::slice(data.x, 0, 0, 4);
  Tensor coreset_y = tx::slice(data.y, 0, 0, 4);
  bnn.fit({{{coreset_x}, coreset_y}}, optim, 50);
  bnn.param_store().restore(snapshot);
  for (const auto& [name, value] : snapshot) {
    EXPECT_TRUE(tx::allclose(bnn.param_store().get(name), value, 1e-6f))
        << name;
  }
}

}  // namespace
