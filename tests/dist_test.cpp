// Distribution tests: densities against closed forms, sampling moments,
// reparameterization gradients, KL properties.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/distributions.h"
#include "tensor/grad_check.h"

namespace tx::dist {
namespace {

double sample_mean(const Tensor& t) {
  double s = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) s += t.at(i);
  return s / static_cast<double>(t.numel());
}

double sample_var(const Tensor& t) {
  const double m = sample_mean(t);
  double s = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    s += (t.at(i) - m) * (t.at(i) - m);
  }
  return s / static_cast<double>(t.numel() - 1);
}

TEST(Normal, LogProbMatchesClosedForm) {
  Normal n(1.0f, 2.0f);
  const float x = 0.5f;
  const float expected = -0.5f * ((x - 1.0f) / 2.0f) * ((x - 1.0f) / 2.0f) -
                         std::log(2.0f) - 0.5f * std::log(2.0f * M_PIf32);
  EXPECT_NEAR(n.log_prob(Tensor::scalar(x)).item(), expected, 1e-5);
}

TEST(Normal, SampleMoments) {
  Generator gen(1);
  Normal n(Tensor::scalar(3.0f), Tensor::scalar(0.5f));
  Tensor s = n.expand({20000})->sample(&gen);
  EXPECT_NEAR(sample_mean(s), 3.0, 0.02);
  EXPECT_NEAR(sample_var(s), 0.25, 0.02);
}

TEST(Normal, RsampleGradients) {
  // d/d loc E[(x)^2] style gradient flows through rsample.
  Tensor loc = Tensor::scalar(1.0f).set_requires_grad(true);
  Tensor scale = Tensor::scalar(0.5f).set_requires_grad(true);
  Generator gen(2);
  Normal n(loc, scale);
  Tensor x = n.rsample(&gen);
  sum(x).backward();
  EXPECT_NEAR(loc.grad().item(), 1.0f, 1e-6);  // dx/dloc = 1
  EXPECT_TRUE(scale.has_grad());               // dx/dscale = eps
}

TEST(Normal, EntropyClosedForm) {
  Normal n(0.0f, 2.0f);
  const float expected = 0.5f * std::log(2.0f * M_PIf32 * M_Ef32 * 4.0f);
  EXPECT_NEAR(n.entropy().item(), expected, 1e-5);
}

TEST(Normal, BroadcastParams) {
  Normal n(zeros({3, 1}), ones({4}));
  EXPECT_EQ(n.shape(), (Shape{3, 4}));
  Generator gen(3);
  EXPECT_EQ(n.sample(&gen).shape(), (Shape{3, 4}));
}

TEST(Normal, DetachParamsCutsGraph) {
  Tensor loc = Tensor::scalar(0.0f).set_requires_grad(true);
  Normal n(loc, Tensor::scalar(1.0f));
  auto d = n.detach_params();
  EXPECT_FALSE(std::static_pointer_cast<Normal>(d)->loc().requires_grad());
}

TEST(Delta, Behaviour) {
  Tensor v(Shape{2}, {1.0f, 2.0f});
  Delta d(v);
  EXPECT_TRUE(allclose(d.sample(), v));
  EXPECT_FLOAT_EQ(d.log_prob(v).at(0), 0.0f);
  Tensor other(Shape{2}, {1.0f, 3.0f});
  EXPECT_TRUE(std::isinf(d.log_prob(other).at(1)));
  // rsample passes gradients through to the value.
  Tensor p = Tensor::scalar(2.0f).set_requires_grad(true);
  Delta dp(p);
  sum(dp.rsample()).backward();
  EXPECT_FLOAT_EQ(p.grad().item(), 1.0f);
}

TEST(LogNormal, DensityAndMean) {
  LogNormal ln(Tensor::scalar(0.0f), Tensor::scalar(0.5f));
  // Density of LogNormal(0, 0.5) at 1.0: z = 0 -> -log(0.5) - log(sqrt(2pi)) - log(1).
  const float expected = -std::log(0.5f) - 0.5f * std::log(2.0f * M_PIf32);
  EXPECT_NEAR(ln.log_prob(Tensor::scalar(1.0f)).item(), expected, 1e-5);
  EXPECT_NEAR(ln.mean().item(), std::exp(0.125f), 1e-5);
  Generator gen(5);
  Tensor s = ln.rsample(&gen);
  EXPECT_GT(s.item(), 0.0f);
}

TEST(Bernoulli, LogProbStable) {
  Bernoulli b(Tensor(Shape{2}, {100.0f, -100.0f}));
  Tensor y(Shape{2}, {1.0f, 0.0f});
  Tensor lp = b.log_prob(y);
  EXPECT_NEAR(lp.at(0), 0.0f, 1e-4);
  EXPECT_NEAR(lp.at(1), 0.0f, 1e-4);
  Tensor wrong(Shape{2}, {0.0f, 1.0f});
  EXPECT_LT(b.log_prob(wrong).at(0), -50.0f);
}

TEST(Bernoulli, SampleFrequency) {
  Generator gen(7);
  Bernoulli b(full({10000}, 1.0f));  // p = sigmoid(1) ~ 0.731
  Tensor s = b.sample(&gen);
  EXPECT_NEAR(sample_mean(s), 0.731, 0.02);
}

TEST(Bernoulli, FromProbsRoundTrip) {
  Bernoulli b = Bernoulli::from_probs(Tensor(Shape{2}, {0.25f, 0.9f}));
  Tensor p = b.probs();
  EXPECT_NEAR(p.at(0), 0.25f, 1e-4);
  EXPECT_NEAR(p.at(1), 0.9f, 1e-4);
}

TEST(Categorical, LogProbAndShapes) {
  Tensor logits(Shape{2, 3}, {0.0f, 1.0f, 2.0f, 5.0f, 0.0f, 0.0f});
  Categorical c(logits);
  EXPECT_EQ(c.shape(), (Shape{2}));
  EXPECT_EQ(c.num_classes(), 3);
  Tensor y(Shape{2}, {2.0f, 0.0f});
  Tensor lp = c.log_prob(y);
  // Row 0: log softmax(2) over {0,1,2}.
  const float lse = std::log(std::exp(0.0f) + std::exp(1.0f) + std::exp(2.0f));
  EXPECT_NEAR(lp.at(0), 2.0f - lse, 1e-5);
  Tensor p = c.probs();
  EXPECT_EQ(p.shape(), (Shape{2, 3}));
}

TEST(Categorical, SampleFrequencies) {
  Generator gen(11);
  // Highly peaked logits: class 1 should dominate.
  Tensor logits = broadcast_to(Tensor(Shape{3}, {0.0f, 4.0f, 0.0f}), {5000, 3});
  Categorical c(logits.detach());
  Tensor s = c.sample(&gen);
  std::int64_t count1 = 0;
  for (std::int64_t i = 0; i < s.numel(); ++i) {
    if (s.at(i) == 1.0f) ++count1;
  }
  EXPECT_GT(static_cast<double>(count1) / 5000.0, 0.9);
}

TEST(Uniform, DensityAndSupport) {
  Uniform u(-1.0f, 3.0f);
  EXPECT_NEAR(u.log_prob(Tensor::scalar(0.0f)).item(), -std::log(4.0f), 1e-6);
  EXPECT_TRUE(std::isinf(u.log_prob(Tensor::scalar(5.0f)).item()));
  EXPECT_NEAR(u.mean().item(), 1.0f, 1e-6);
  Generator gen(13);
  Tensor s = u.expand({1000})->sample(&gen);
  for (std::int64_t i = 0; i < s.numel(); ++i) {
    EXPECT_GE(s.at(i), -1.0f);
    EXPECT_LT(s.at(i), 3.0f);
  }
}

TEST(ScaleMixture, DensityBetweenComponents) {
  ScaleMixtureNormal m({1}, 0.5f, 1.0f, 0.1f);
  Normal wide(0.0f, 1.0f), narrow(0.0f, 0.1f);
  const float lm = m.log_prob(Tensor::scalar(0.05f)).item();
  const float lw = wide.log_prob(Tensor::scalar(0.05f)).item();
  const float ln = narrow.log_prob(Tensor::scalar(0.05f)).item();
  EXPECT_GT(lm, std::min(lw, ln));
  EXPECT_LT(lm, std::max(lw, ln) + 1e-3f);
}

TEST(LowRank, LogProbMatchesDiagonalWhenFactorZero) {
  // With W = 0 the low-rank Gaussian reduces to a factorized Normal.
  Generator gen(17);
  Tensor loc = randn({5}, &gen);
  Tensor diag = rand_uniform({5}, 0.5f, 1.5f, &gen);
  LowRankNormal lr(loc, zeros({5, 2}), diag);
  Normal n(loc, diag);
  Tensor x = randn({5}, &gen);
  EXPECT_NEAR(lr.log_prob(x).item(), n.log_prob_sum(x).item(), 1e-3);
}

TEST(LowRank, SampleCovarianceMatchesModel) {
  Generator gen(19);
  Tensor w(Shape{2, 1}, {1.0f, 0.5f});
  Tensor diag(Shape{2}, {0.1f, 0.1f});
  LowRankNormal lr(zeros({2}), w, diag);
  // cov = w w^T + diag^2 => var0 = 1.01, var1 = 0.26, cov01 = 0.5.
  const int kSamples = 20000;
  double v0 = 0, v1 = 0, c01 = 0;
  for (int i = 0; i < kSamples; ++i) {
    Tensor s = lr.sample(&gen);
    v0 += s.at(0) * s.at(0);
    v1 += s.at(1) * s.at(1);
    c01 += s.at(0) * s.at(1);
  }
  EXPECT_NEAR(v0 / kSamples, 1.01, 0.05);
  EXPECT_NEAR(v1 / kSamples, 0.26, 0.02);
  EXPECT_NEAR(c01 / kSamples, 0.50, 0.03);
}

TEST(LowRank, LogProbGradients) {
  Generator gen(23);
  Tensor loc = randn({4}, &gen);
  Tensor w = mul(randn({4, 2}, &gen), Tensor::scalar(0.3f)).detach();
  Tensor diag = rand_uniform({4}, 0.5f, 1.0f, &gen);
  Tensor x = randn({4}, &gen);
  EXPECT_TRUE(grad_check(
      [x](const std::vector<Tensor>& in) {
        LowRankNormal lr(in[0], in[1], in[2]);
        return lr.log_prob(x);
      },
      {loc, w, diag}));
}

TEST(LowRank, EntropyMatchesDiagonalCase) {
  Tensor diag(Shape{3}, {0.5f, 1.0f, 2.0f});
  LowRankNormal lr(zeros({3}), zeros({3, 2}), diag);
  Normal n(zeros({3}), diag);
  EXPECT_NEAR(lr.entropy().item(), sum(n.entropy()).item(), 1e-4);
}

TEST(KL, NormalNormalClosedForm) {
  Normal p(1.0f, 2.0f), q(0.0f, 1.0f);
  // KL = 0.5*(s^2 + m^2 - 1) - log s = 0.5*(4+1-1) - log 2.
  EXPECT_NEAR(kl_divergence(p, q).item(), 2.0f - std::log(2.0f), 1e-5);
}

TEST(KL, Properties) {
  Normal p(0.3f, 0.7f);
  EXPECT_NEAR(kl_divergence(p, p).item(), 0.0f, 1e-6);
  Normal q(-0.2f, 1.3f);
  EXPECT_GT(kl_divergence(p, q).item(), 0.0f);
  EXPECT_TRUE(has_analytic_kl(p, q));
  Uniform u(0.0f, 1.0f);
  EXPECT_FALSE(has_analytic_kl(p, u));
  EXPECT_THROW(kl_divergence(p, u), Error);
}

TEST(KL, MonteCarloAgreesWithAnalytic) {
  Generator gen(29);
  Normal p(zeros({2000}), full({2000}, 0.8f));
  Normal q(full({2000}, 0.1f), ones({2000}));
  const float analytic = kl_divergence(p, q).item() / 2000.0f;
  double mc = 0.0;
  const int kReps = 20;
  for (int i = 0; i < kReps; ++i) mc += mc_kl(p, q, &gen).item() / 2000.0f;
  EXPECT_NEAR(mc / kReps, analytic, 0.01);
}

TEST(KL, PropertySweepNonNegative) {
  Generator gen(31);
  for (int rep = 0; rep < 20; ++rep) {
    Normal p(randn({4}, &gen), rand_uniform({4}, 0.2f, 2.0f, &gen));
    Normal q(randn({4}, &gen), rand_uniform({4}, 0.2f, 2.0f, &gen));
    EXPECT_GE(kl_divergence(p, q).item(), -1e-5f);
  }
}

TEST(Dist, RsampleUnavailableThrows) {
  Bernoulli b(Tensor::scalar(0.0f));
  EXPECT_THROW(b.rsample(), Error);
  EXPECT_FALSE(b.has_rsample());
}

}  // namespace
}  // namespace tx::dist
