// tx::resil tests: fault-plan grammar, crash-safe checkpoint I/O, tx.ckpt.v1
// bundle integrity, bitwise-exact SVI/MCMC resume at multiple thread counts,
// NaN-gradient rollback/retry, retry exhaustion with forensics, and
// divergence-storm restarts. Registered under the ctest label "fault" so the
// CI fault job can run exactly this binary under a TYXE_FAULT matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

#include "dist/distributions.h"
#include "infer/infer.h"
#include "obs/obs.h"
#include "par/pool.h"
#include "resil/fault.h"
#include "resil/io.h"
#include "resil/resil.h"

namespace tx {
namespace {

using dist::Normal;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// ---- fault plan grammar ----------------------------------------------------

TEST(FaultPlan, ParsesEveryClauseKind) {
  fault::Plan plan = fault::parse(
      "nan-grad=z@5x2; write-open=3@2; write-rename=1; "
      "bad-alloc=matmul@4x3; stall=par.worker@1,ms=10");
  ASSERT_EQ(plan.specs.size(), 5u);

  EXPECT_EQ(plan.specs[0].kind, fault::Kind::kNanGrad);
  EXPECT_EQ(plan.specs[0].target, "z");
  EXPECT_EQ(plan.specs[0].at, 5);
  EXPECT_EQ(plan.specs[0].times, 2);

  EXPECT_EQ(plan.specs[1].kind, fault::Kind::kWriteOpen);
  EXPECT_EQ(plan.specs[1].at, 2);
  EXPECT_EQ(plan.specs[1].times, 3);

  EXPECT_EQ(plan.specs[2].kind, fault::Kind::kWriteRename);
  EXPECT_EQ(plan.specs[2].at, 1);
  EXPECT_EQ(plan.specs[2].times, 1);

  EXPECT_EQ(plan.specs[3].kind, fault::Kind::kBadAlloc);
  EXPECT_EQ(plan.specs[3].target, "matmul");
  EXPECT_EQ(plan.specs[3].at, 4);
  EXPECT_EQ(plan.specs[3].times, 3);

  EXPECT_EQ(plan.specs[4].kind, fault::Kind::kStall);
  EXPECT_EQ(plan.specs[4].target, "par.worker");
  EXPECT_EQ(plan.specs[4].ms, 10);
}

TEST(FaultPlan, RejectsBadSyntax) {
  EXPECT_THROW(fault::parse("bogus=1"), Error);
  EXPECT_THROW(fault::parse("nan-grad"), Error);
  EXPECT_THROW(fault::parse("nan-grad=z"), Error);          // missing @step
  EXPECT_THROW(fault::parse("bad-alloc=x"), Error);         // missing @nth
  EXPECT_THROW(fault::parse("stall=x@1"), Error);           // missing ms
  EXPECT_THROW(fault::parse("write-open=zero"), Error);
  EXPECT_THROW(fault::parse("nan-grad=z@5xq"), Error);
}

TEST(FaultPlan, InstallFromEnvIsExplicitOptIn) {
  ::unsetenv("TYXE_FAULT");
  EXPECT_FALSE(fault::install_from_env());
  EXPECT_FALSE(fault::armed());

  ::setenv("TYXE_FAULT", "bad-alloc=tensor.matmul@1", 1);
  EXPECT_TRUE(fault::install_from_env());
  EXPECT_TRUE(fault::armed());
  Tensor a = ones({4, 4});
  EXPECT_THROW(matmul(a, a), std::bad_alloc);
  EXPECT_EQ(fault::fires(fault::Kind::kBadAlloc), 1);
  // The single-shot spec is spent; the next call succeeds.
  EXPECT_NO_THROW(matmul(a, a));

  fault::clear();
  ::unsetenv("TYXE_FAULT");
  EXPECT_FALSE(fault::armed());
}

TEST(FaultPlan, BadAllocFiresOnExactCallCounts) {
  fault::ScopedPlan plan("bad-alloc=tensor.matmul@2x2");
  Tensor a = ones({2, 2});
  EXPECT_NO_THROW(matmul(a, a));           // match 1: before the window
  EXPECT_THROW(matmul(a, a), std::bad_alloc);  // match 2
  EXPECT_THROW(matmul(a, a), std::bad_alloc);  // match 3
  EXPECT_NO_THROW(matmul(a, a));           // window exhausted
  EXPECT_EQ(fault::fires(fault::Kind::kBadAlloc), 2);
}

TEST(FaultPlan, StallDoesNotBreakParallelWork) {
  const int prev = par::num_threads();
  par::set_num_threads(2);
  fault::ScopedPlan plan("stall=par.worker@1,ms=5");
  Tensor a = ones({1 << 16});
  Tensor b = add(a, a);  // large enough to fan out over the pool
  EXPECT_FLOAT_EQ(b.at(0), 2.0f);
  EXPECT_FLOAT_EQ(b.at((1 << 16) - 1), 2.0f);
  par::set_num_threads(prev);
}

// ---- crash-safe writes -----------------------------------------------------

TEST(AtomicWrite, WriteOpenFaultLeavesOldContentIntact) {
  const std::string path = tmp_path("aw_open.txt");
  ASSERT_TRUE(resil::atomic_write_file(path, "old content"));

  {
    fault::ScopedPlan plan("write-open=1");
    EXPECT_FALSE(resil::atomic_write_file(path, "new content"));
  }
  std::string got;
  ASSERT_TRUE(resil::read_file(path, &got));
  EXPECT_EQ(got, "old content");  // torn temp write never reached the target

  ASSERT_TRUE(resil::atomic_write_file(path, "new content"));
  ASSERT_TRUE(resil::read_file(path, &got));
  EXPECT_EQ(got, "new content");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(AtomicWrite, KillBetweenWriteAndRenameLeavesOldContentIntact) {
  const std::string path = tmp_path("aw_rename.txt");
  ASSERT_TRUE(resil::atomic_write_file(path, "old content"));

  {
    fault::ScopedPlan plan("write-rename=1");
    EXPECT_FALSE(resil::atomic_write_file(path, "new content"));
  }
  std::string got;
  ASSERT_TRUE(resil::read_file(path, &got));
  EXPECT_EQ(got, "old content");
  // The simulated kill leaves a complete temp file behind — debris, not
  // corruption; the next write replaces it.
  ASSERT_TRUE(resil::read_file(path + ".tmp", &got));
  EXPECT_EQ(got, "new content");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ---- tx.ckpt.v1 bundles ----------------------------------------------------

resil::Bundle sample_bundle() {
  resil::Bundle b;
  b.set("alpha", "first section\nwith two lines\n");
  b.set("zeta", std::string("binary\0bytes", 12));
  b.set("meta", "svi steps 42\n");
  return b;
}

TEST(Bundle, SerializeRoundTripsExactly) {
  resil::Bundle b = sample_bundle();
  const std::string wire = b.serialize();
  EXPECT_EQ(wire.rfind("tx.ckpt.v1 3\n", 0), 0u);

  resil::Bundle back = resil::Bundle::deserialize(wire);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.get("alpha"), b.get("alpha"));
  EXPECT_EQ(back.get("zeta"), b.get("zeta"));
  EXPECT_EQ(back.get("meta"), b.get("meta"));
  EXPECT_EQ(back.serialize(), wire);
}

TEST(Bundle, RejectsTruncationAndBitFlips) {
  const std::string wire = sample_bundle().serialize();
  for (std::size_t cut :
       {std::size_t{0}, std::size_t{5}, wire.size() / 2, wire.size() - 1}) {
    EXPECT_THROW(resil::Bundle::deserialize(wire.substr(0, cut)), Error)
        << "truncation at " << cut << " was accepted";
  }
  for (std::size_t flip : {std::size_t{3}, wire.size() / 3, wire.size() / 2}) {
    std::string corrupt = wire;
    corrupt[flip] = static_cast<char>(corrupt[flip] ^ 0x20);
    EXPECT_THROW(resil::Bundle::deserialize(corrupt), Error)
        << "bit flip at " << flip << " was accepted";
  }
}

TEST(Bundle, FooterOneByteShortIsRejectedInMemoryAndOnDisk) {
  // The nastiest truncation: everything up to the "@checksum <16 hex>\n"
  // footer's last byte survives, so a parser that stops verifying at the
  // last complete line would accept a silently shortened checkpoint.
  const std::string wire = sample_bundle().serialize();
  const std::size_t footer = wire.rfind("@checksum ");
  ASSERT_NE(footer, std::string::npos);
  for (std::size_t cut = footer; cut < wire.size(); ++cut) {
    EXPECT_THROW(resil::Bundle::deserialize(wire.substr(0, cut)), Error)
        << "footer cut at byte " << cut << " of " << wire.size()
        << " was accepted";
  }

  // Same contract at the file level: a checkpoint file exactly one byte
  // short must throw from read_file, never yield a partial Bundle.
  const std::string path = tmp_path("bundle_footer_short.ckpt");
  ASSERT_TRUE(resil::atomic_write_file(path, wire.substr(0, wire.size() - 1)));
  EXPECT_THROW(resil::Bundle::read_file(path), Error);
  std::remove(path.c_str());
}

TEST(Bundle, InterruptedRewriteAlwaysLeavesLoadableFile) {
  const std::string path = tmp_path("bundle_interrupt.ckpt");
  std::remove(path.c_str());
  resil::Bundle first = sample_bundle();
  ASSERT_TRUE(first.write_file(path));

  resil::Bundle second = sample_bundle();
  second.set("meta", "svi steps 43\n");

  // Whatever write step dies — open/short-write or between write and rename
  // — the destination must still load as a complete bundle.
  for (const char* spec : {"write-open=1", "write-rename=1"}) {
    {
      fault::ScopedPlan plan(spec);
      EXPECT_FALSE(second.write_file(path));
    }
    resil::Bundle loaded = resil::Bundle::read_file(path);
    EXPECT_EQ(loaded.get("meta"), first.get("meta")) << "after " << spec;
  }
  ASSERT_TRUE(second.write_file(path));
  EXPECT_EQ(resil::Bundle::read_file(path).get("meta"), second.get("meta"));
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ---- optimizer state -------------------------------------------------------

TEST(OptimState, SaveLoadResumesAdamBitwise) {
  // Reference: 6 uninterrupted Adam steps on a quadratic.
  infer::Adam ref(0.1);
  Tensor xr = Tensor::scalar(5.0f).set_requires_grad(true);
  ref.add_param("x", xr);
  for (int i = 0; i < 6; ++i) {
    ref.zero_grad();
    square(xr - 3.0f).backward();
    ref.step();
  }

  // Interrupted: 3 steps, serialize, rebuild everything, 3 more steps.
  infer::Adam first(0.1);
  Tensor x1 = Tensor::scalar(5.0f).set_requires_grad(true);
  first.add_param("x", x1);
  for (int i = 0; i < 3; ++i) {
    first.zero_grad();
    square(x1 - 3.0f).backward();
    first.step();
  }
  std::ostringstream saved;
  first.save_state(saved);

  infer::Adam second(0.5);  // wrong lr on purpose; load_state restores it
  Tensor x2 = Tensor::scalar(x1.item()).set_requires_grad(true);
  second.add_param("x", x2);
  std::istringstream in(saved.str());
  second.load_state(in);
  EXPECT_DOUBLE_EQ(second.lr(), 0.1);
  for (int i = 0; i < 3; ++i) {
    second.zero_grad();
    square(x2 - 3.0f).backward();
    second.step();
  }
  EXPECT_EQ(xr.item(), x2.item());  // bitwise: moments survived the round trip
}

TEST(OptimState, CorruptStreamThrowsWithoutMutation) {
  infer::Adam opt(0.1);
  Tensor x = Tensor::scalar(5.0f).set_requires_grad(true);
  opt.add_param("x", x);
  opt.zero_grad();
  square(x).backward();
  opt.step();
  std::ostringstream before;
  opt.save_state(before);

  const std::string good = before.str();
  std::istringstream truncated(good.substr(0, good.size() / 2));
  EXPECT_THROW(opt.load_state(truncated), Error);
  std::istringstream wrong_kind("sgd v1\nlr 0x1p-1\nvelocity 0\n");
  EXPECT_THROW(opt.load_state(wrong_kind), Error);

  std::ostringstream after;
  opt.save_state(after);
  EXPECT_EQ(after.str(), good);  // failed loads left the state untouched
}

// ---- SVI fit: resume determinism -------------------------------------------

// Conjugate Normal-Normal model (z ~ N(0,1); x_i ~ N(z, 0.5) observed).
struct ConjModel {
  Tensor data;
  void operator()() const {
    Tensor z = ppl::sample("z", std::make_shared<Normal>(0.0f, 1.0f));
    ppl::sample("x",
                std::make_shared<Normal>(broadcast_to(z, data.shape()),
                                         full(data.shape(), 0.5f)),
                data);
  }
};

ConjModel make_model() {
  return ConjModel{
      Tensor(Shape{8}, {1.2f, 0.8f, 1.1f, 0.9f, 1.3f, 1.0f, 0.7f, 1.4f})};
}

struct SviRun {
  std::map<std::int64_t, double> losses;
  std::map<std::string, std::vector<float>> params;
  resil::FitReport report;
};

/// Runs `total` steps (optionally split at `split` with a full teardown and
/// resume-from-disk in between) and returns every loss plus the final params.
SviRun run_svi(std::int64_t total, std::int64_t split,
               const std::string& ckpt_path) {
  SviRun out;
  auto one_leg = [&](std::int64_t target, unsigned gen_seed) {
    // Pin the global generator: guide warm-up/param init draws from it, and
    // both the uninterrupted and the split run must start identically.
    manual_seed(42);
    ppl::ParamStore store;
    auto model = make_model();
    auto guide = std::make_shared<infer::AutoNormal>(
        [model] { model(); }, infer::AutoNormalConfig{}, "g", &store);
    // Warm the guide once so lazy site discovery runs now, not inside the
    // first resumed step where it would consume the restored RNG stream.
    (*guide)();
    auto optimizer = std::make_shared<infer::Adam>(0.05);
    infer::StepLR sched(*optimizer, 40, 0.5);
    Generator gen(gen_seed);
    infer::SVI svi([model] { model(); }, [guide] { (*guide)(); }, optimizer,
                   std::make_shared<infer::TraceELBO>(1), &store, &gen);
    svi.set_step_callback([&out](const infer::SVIStepInfo& info) {
      out.losses[info.step] = info.loss;
    });
    resil::RetryPolicy policy;
    policy.checkpoint_path = ckpt_path;
    policy.checkpoint_every = 25;
    policy.scheduler = &sched;
    out.report = svi.fit(target, policy);
    out.params.clear();
    for (const auto& [name, p] : store.items()) {
      out.params[name] = p.detach().to_vector();
    }
  };
  if (split > 0) {
    one_leg(split, 1234);
    one_leg(total, 999);  // fresh seed: resume must overwrite the generator
  } else {
    one_leg(total, 1234);
  }
  return out;
}

TEST(SviResume, BitwiseIdenticalAtEveryThreadCount) {
  const int prev = par::num_threads();
  for (int threads : {1, 4}) {
    par::set_num_threads(threads);
    const std::string base =
        tmp_path("svi_resume_t" + std::to_string(threads));
    std::remove((base + "_a.ckpt").c_str());
    std::remove((base + "_b.ckpt").c_str());

    SviRun full = run_svi(200, /*split=*/0, base + "_a.ckpt");
    SviRun split = run_svi(200, /*split=*/100, base + "_b.ckpt");

    EXPECT_FALSE(full.report.resumed);
    EXPECT_TRUE(split.report.resumed) << "threads=" << threads;
    EXPECT_EQ(split.report.steps_completed, 200);

    // Every post-resume step must replay the uninterrupted run bit for bit.
    for (std::int64_t s = 100; s < 200; ++s) {
      ASSERT_TRUE(split.losses.count(s)) << "threads=" << threads;
      EXPECT_EQ(full.losses.at(s), split.losses.at(s))
          << "loss diverged at step " << s << " threads=" << threads;
    }
    ASSERT_EQ(full.params.size(), split.params.size());
    for (const auto& [name, values] : full.params) {
      ASSERT_TRUE(split.params.count(name)) << name;
      EXPECT_EQ(values, split.params.at(name))
          << "param " << name << " diverged, threads=" << threads;
    }
    EXPECT_EQ(full.report.final_loss, split.report.final_loss);

    std::remove((base + "_a.ckpt").c_str());
    std::remove((base + "_b.ckpt").c_str());
  }
  par::set_num_threads(prev);
}

TEST(SviResume, CorruptCheckpointThrowsInsteadOfSilentRestart) {
  const std::string path = tmp_path("svi_corrupt.ckpt");
  ASSERT_TRUE(resil::atomic_write_file(path, "tx.ckpt.v1 1\n@ junk 3\nabc\n"));
  SviRun out;
  EXPECT_THROW(out = run_svi(10, 0, path), Error);
  std::remove(path.c_str());
}

// ---- SVI fit: NaN-gradient recovery ----------------------------------------

TEST(SviFit, NanGradRollsBackDecaysLrAndFinishes) {
  obs::diag::reset();
  fault::ScopedPlan plan("nan-grad=g.@5");  // poison every guide param once
  ppl::ParamStore store;
  auto model = make_model();
  auto guide = std::make_shared<infer::AutoNormal>(
      [model] { model(); }, infer::AutoNormalConfig{}, "g", &store);
  auto optimizer = std::make_shared<infer::Adam>(0.05);
  Generator gen(7);
  infer::SVI svi([model] { model(); }, [guide] { (*guide)(); }, optimizer,
                 std::make_shared<infer::TraceELBO>(1), &store, &gen);

  resil::RetryPolicy policy;
  policy.checkpoint_every = 10;
  policy.max_retries = 3;
  policy.lr_decay = 0.5;
  resil::FitReport report = svi.fit(30, policy);

  EXPECT_FALSE(report.exhausted);
  EXPECT_EQ(report.steps_completed, 30);
  EXPECT_GE(report.rollbacks, 1);
  // A rollback rewinds to the anchor and replays the good steps since it, so
  // steps_run exceeds the net progress by at least the rollback count.
  EXPECT_GE(report.steps_run, 30 + report.rollbacks);
  EXPECT_TRUE(std::isfinite(report.final_loss));
  EXPECT_GT(fault::fires(fault::Kind::kNanGrad), 0);
  // The retried segment runs at a decayed lr relative to the 0.05 start.
  EXPECT_LT(optimizer->lr(), 0.05);
  for (const auto& [name, p] : store.items()) {
    for (float v : p.detach().to_vector()) {
      EXPECT_TRUE(std::isfinite(v)) << name << " left non-finite by recovery";
    }
  }
}

TEST(SviFit, RetriesExhaustedReportsForensicsAndKeepsLastGoodState) {
  obs::diag::Config cfg;
  cfg.forensic_path = tmp_path("svi_forensic.jsonl");
  std::remove(cfg.forensic_path.c_str());
  obs::diag::configure(cfg);
  obs::diag::reset();
  obs::diag::set_enabled(true);

  // Every retry re-poisons, so the retry budget must run out.
  fault::ScopedPlan plan("nan-grad=g.@5x100000");
  ppl::ParamStore store;
  auto model = make_model();
  auto guide = std::make_shared<infer::AutoNormal>(
      [model] { model(); }, infer::AutoNormalConfig{}, "g", &store);
  auto optimizer = std::make_shared<infer::Adam>(0.05);
  Generator gen(7);
  infer::SVI svi([model] { model(); }, [guide] { (*guide)(); }, optimizer,
                 std::make_shared<infer::TraceELBO>(1), &store, &gen);

  resil::RetryPolicy policy;
  policy.checkpoint_every = 10;
  policy.max_retries = 2;
  resil::FitReport report = svi.fit(30, policy);
  obs::diag::set_enabled(false);

  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.rollbacks, 3);  // max_retries + the final failing attempt
  EXPECT_LT(report.steps_completed, 30);
  EXPECT_FALSE(report.failure_reason.empty());
  EXPECT_GT(obs::diag::nan_trips(), 0);
  // The failure left the last good (finite) state in place, at the anchor lr.
  EXPECT_DOUBLE_EQ(optimizer->lr(), 0.05);
  for (const auto& [name, p] : store.items()) {
    for (float v : p.detach().to_vector()) {
      EXPECT_TRUE(std::isfinite(v)) << name << " non-finite after exhaustion";
    }
  }
  std::remove(cfg.forensic_path.c_str());
}

// ---- MCMC driver: resume determinism and storms ----------------------------

/// Model whose evaluation count is observable — and which can simulate a
/// process crash by throwing once the count passes `limit`.
infer::Program counting_model(std::shared_ptr<std::atomic<long long>> count,
                              long long limit) {
  return [count, limit] {
    if (count->fetch_add(1) + 1 > limit) {
      throw std::runtime_error("injected crash");
    }
    Tensor z = ppl::sample("z", std::make_shared<Normal>(0.0f, 1.0f));
    ppl::sample("obs", std::make_shared<Normal>(z, Tensor::scalar(0.5f)),
                Tensor::scalar(1.0f));
  };
}

TEST(McmcResume, TwoChainNutsBitwiseIdenticalAtEveryThreadCount) {
  constexpr long long kNoLimit = 1LL << 60;
  const int prev = par::num_threads();
  std::vector<std::vector<double>> reference;  // per chain, from threads=1

  for (int threads : {1, 4}) {
    par::set_num_threads(threads);
    auto factory = [] {
      return std::shared_ptr<infer::MCMCKernel>(
          std::make_shared<infer::NUTS>(0.1, 6));
    };
    resil::MCMCPolicy policy;
    policy.checkpoint_every = 20;

    // Uninterrupted reference run (no persistence).
    auto count_a = std::make_shared<std::atomic<long long>>(0);
    Generator gen_a(2024);
    resil::MCMCDriver a(factory, /*num_samples=*/60, /*warmup=*/30,
                        /*num_chains=*/2, policy);
    a.run(counting_model(count_a, kNoLimit), &gen_a);
    ASSERT_EQ(a.num_samples(), 120u);

    // Crash mid-run (after roughly half the model evaluations), then resume
    // from the last round checkpoint in a fresh driver.
    resil::MCMCPolicy persisted = policy;
    persisted.checkpoint_path =
        tmp_path("mcmc_resume_t" + std::to_string(threads) + ".ckpt");
    std::remove(persisted.checkpoint_path.c_str());

    auto count_b = std::make_shared<std::atomic<long long>>(0);
    Generator gen_b(2024);
    resil::MCMCDriver b1(factory, 60, 30, 2, persisted);
    EXPECT_THROW(b1.run(counting_model(count_b, count_a->load() / 2), &gen_b),
                 std::runtime_error);
    ASSERT_TRUE(resil::file_exists(persisted.checkpoint_path))
        << "crash before the first round checkpoint";

    auto count_c = std::make_shared<std::atomic<long long>>(0);
    Generator gen_c(555);  // different seed: resume must restore generators
    resil::MCMCDriver b2(factory, 60, 30, 2, persisted);
    b2.run(counting_model(count_c, kNoLimit), &gen_c);
    EXPECT_TRUE(b2.resumed());
    ASSERT_EQ(b2.num_samples(), 120u);

    for (int chain = 0; chain < 2; ++chain) {
      const auto want = a.coordinate_chain(0, chain);
      const auto got = b2.coordinate_chain(0, chain);
      ASSERT_EQ(want.size(), got.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i], got[i])
            << "chain " << chain << " draw " << i << " threads=" << threads;
      }
      if (threads == 1) {
        reference.push_back(want);
      } else {
        // Thread count must not perturb the trajectories either.
        const auto& base = reference[static_cast<std::size_t>(chain)];
        ASSERT_EQ(base.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ(base[i], want[i]) << "chain " << chain << " draw " << i;
        }
      }
    }
    std::remove(persisted.checkpoint_path.c_str());
    std::remove((persisted.checkpoint_path + ".tmp").c_str());
  }
  par::set_num_threads(prev);
}

TEST(McmcStorm, HalvesStepSizeAndRecovers) {
  auto factory = [] {
    // Absurd step size: every transition diverges until storms shrink it.
    return std::shared_ptr<infer::MCMCKernel>(
        std::make_shared<infer::HMC>(1000.0, 10, /*adapt=*/false));
  };
  resil::MCMCPolicy policy;
  policy.checkpoint_every = 50;  // whole run = one round
  policy.storm_threshold = 0;
  policy.max_restarts = 30;
  policy.step_size_factor = 0.5;

  Generator gen(31);
  auto count = std::make_shared<std::atomic<long long>>(0);
  resil::MCMCDriver driver(factory, /*num_samples=*/20, /*warmup=*/0,
                           /*num_chains=*/1, policy);
  driver.run(counting_model(count, 1LL << 60), &gen);

  EXPECT_GE(driver.restarts(), 5);
  EXPECT_EQ(driver.num_samples(), 20u);
  for (double x : driver.coordinate_chain(0, 0)) {
    EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(McmcStorm, ExhaustedRestartsThrowCleanly) {
  auto factory = [] {
    return std::shared_ptr<infer::MCMCKernel>(
        std::make_shared<infer::HMC>(1000.0, 10, /*adapt=*/false));
  };
  resil::MCMCPolicy policy;
  policy.checkpoint_every = 50;
  policy.storm_threshold = 0;
  policy.max_restarts = 1;
  policy.step_size_factor = 1.0;  // never improves, so the budget must blow

  Generator gen(31);
  auto count = std::make_shared<std::atomic<long long>>(0);
  resil::MCMCDriver driver(factory, 20, 0, 1, policy);
  EXPECT_THROW(driver.run(counting_model(count, 1LL << 60), &gen), Error);
}

// ---- resil.* metrics -------------------------------------------------------

TEST(ResilMetrics, RecoveryActivityIsCounted) {
  obs::set_enabled(true);
  obs::registry().clear();
  fault::ScopedPlan plan("nan-grad=g.@3");

  ppl::ParamStore store;
  auto model = make_model();
  auto guide = std::make_shared<infer::AutoNormal>(
      [model] { model(); }, infer::AutoNormalConfig{}, "g", &store);
  auto optimizer = std::make_shared<infer::Adam>(0.05);
  Generator gen(7);
  infer::SVI svi([model] { model(); }, [guide] { (*guide)(); }, optimizer,
                 std::make_shared<infer::TraceELBO>(1), &store, &gen);
  resil::RetryPolicy policy;
  policy.checkpoint_path = tmp_path("resil_metrics.ckpt");
  std::remove(policy.checkpoint_path.c_str());
  policy.checkpoint_every = 5;
  svi.fit(10, policy);

  auto& reg = obs::registry();
  EXPECT_GE(reg.counter("resil.svi.rollbacks").value(), 1);
  EXPECT_GE(reg.counter("resil.ckpt.snapshots").value(), 2);
  EXPECT_GE(reg.counter("resil.ckpt.writes").value(), 2);
  EXPECT_EQ(reg.counter("resil.ckpt.write_failures").value(), 0);
  obs::set_enabled(false);
  std::remove(policy.checkpoint_path.c_str());
  std::remove((policy.checkpoint_path + ".tmp").c_str());
}

}  // namespace
}  // namespace tx
