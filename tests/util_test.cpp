// Tests for the util library: error formatting, RNG reproducibility, table
// rendering, run statistics.
#include <gtest/gtest.h>

#include "util/common.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace tx {
namespace {

TEST(Check, ThrowsWithContext) {
  try {
    TX_CHECK(1 == 2, "expected ", 1, " got ", 2);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("expected 1 got 2"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Join, FormatsContainers) {
  EXPECT_EQ(join(std::vector<int>{1, 2, 3}), "1, 2, 3");
  EXPECT_EQ(join(std::vector<int>{}), "");
  EXPECT_EQ(join(std::vector<int>{7}, "-"), "7");
}

TEST(Random, SeedsReproduceStreams) {
  Generator a(123), b(123);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.normal(), b.normal());
  }
  a.seed(7);
  b.seed(7);
  EXPECT_EQ(a.randint(0, 1000), b.randint(0, 1000));
}

TEST(Random, RangesRespected) {
  Generator g(5);
  for (int i = 0; i < 200; ++i) {
    const double u = g.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
    const auto r = g.randint(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
  int heads = 0;
  for (int i = 0; i < 2000; ++i) heads += g.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(heads / 2000.0, 0.25, 0.03);
}

TEST(Random, GlobalGeneratorManualSeed) {
  manual_seed(99);
  const double first = global_generator().normal();
  manual_seed(99);
  EXPECT_EQ(global_generator().normal(), first);
}

TEST(Table, AlignsAndValidates) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.00"});
  t.add_row({"longer-name", "2.50"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present; all rows share the same width.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), Error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt_pm(1.5, 0.25, 2), "1.50 ± 0.25");
}

TEST(Stats, QuantileAndMedian) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median_of(odd), 3.0);
  EXPECT_DOUBLE_EQ(quantile_of(odd, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_of(odd, 1.0), 5.0);
  // Even length interpolates between the middle order statistics.
  const std::vector<double> even{4.0, 2.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median_of(even), 2.5);
  EXPECT_DOUBLE_EQ(quantile_of(even, 0.25), 1.75);
  // Input order is preserved (quantile_of copies).
  EXPECT_DOUBLE_EQ(odd[0], 5.0);
  // Single element: every quantile is that element.
  EXPECT_DOUBLE_EQ(quantile_of({7.0}, 0.9), 7.0);
  EXPECT_THROW(quantile_of({}, 0.5), Error);
  EXPECT_THROW(quantile_of({1.0}, -0.1), Error);
  EXPECT_THROW(quantile_of({1.0}, 1.5), Error);
}

TEST(Stats, MeanVarianceStderr) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(mean_of(xs), 2.5, 1e-12);
  EXPECT_NEAR(variance_of(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stderr_of(xs), std::sqrt(5.0 / 3.0 / 4.0), 1e-12);
  EXPECT_NEAR(two_stderr_of(xs), 2.0 * stderr_of(xs), 1e-12);
  EXPECT_THROW(mean_of({}), Error);
  EXPECT_THROW(variance_of({1.0}), Error);
}

}  // namespace
}  // namespace tx
